// Multi-threaded STM tests: isolation, atomicity, opacity-style consistency,
// orec collisions, unit loads under contention.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

namespace stm = sftree::stm;

namespace {

struct LockModeCase {
  stm::LockMode mode;
  stm::TmBackend backend;
  const char* name;
};

class StmConcurrentTest : public ::testing::TestWithParam<LockModeCase> {
 protected:
  void SetUp() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = GetParam().mode;
    cfg.backend = GetParam().backend;
    stm::defaultDomain().setConfig(cfg);
  }
  void TearDown() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = stm::LockMode::Lazy;
    cfg.backend = stm::TmBackend::Orec;
    stm::defaultDomain().setConfig(cfg);
  }

  static constexpr int kThreads = 4;
};

TEST_P(StmConcurrentTest, CounterIncrementsAreNotLost) {
  stm::TxField<std::int64_t> counter(0);
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomically(
            [&](stm::Tx& tx) { counter.write(tx, counter.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.loadRelaxed(), kThreads * kPerThread);
}

TEST_P(StmConcurrentTest, BankTransfersPreserveTotal) {
  constexpr int kAccounts = 32;
  constexpr std::int64_t kInitial = 1000;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> accounts;
  for (int i = 0; i < kAccounts; ++i) {
    accounts.push_back(std::make_unique<stm::TxField<std::int64_t>>(kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> inconsistentSnapshots{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads - 1; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 12345 + t;
      auto next = [&rng] {
        rng ^= rng >> 12;
        rng ^= rng << 25;
        rng ^= rng >> 27;
        return rng * 0x2545F4914F6CDD1DULL;
      };
      for (int i = 0; i < 3000; ++i) {
        const int from = static_cast<int>(next() % kAccounts);
        const int to = static_cast<int>(next() % kAccounts);
        const std::int64_t amount = static_cast<std::int64_t>(next() % 10);
        stm::atomically([&](stm::Tx& tx) {
          accounts[from]->write(tx, accounts[from]->read(tx) - amount);
          accounts[to]->write(tx, accounts[to]->read(tx) + amount);
        });
      }
    });
  }
  // A reader continuously audits the invariant inside transactions; opacity
  // means it must never observe a partial transfer.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::int64_t total = stm::atomically([&](stm::Tx& tx) {
        std::int64_t sum = 0;
        for (auto& acc : accounts) sum += acc->read(tx);
        return sum;
      });
      if (total != kAccounts * kInitial) {
        inconsistentSnapshots.fetch_add(1);
      }
    }
  });

  for (int t = 0; t < kThreads - 1; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(inconsistentSnapshots.load(), 0);
  std::int64_t total = 0;
  for (auto& acc : accounts) total += acc->loadRelaxed();
  EXPECT_EQ(total, kAccounts * kInitial);
}

// Two fields always updated together must always be read equal — including
// by ureads sandwiched by the orec protocol? No: ureads of two different
// words are *independently* atomic, so only the transactional reader checks
// pair consistency.
TEST_P(StmConcurrentTest, PairedWritesAreReadConsistently) {
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 20000; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        a.write(tx, i);
        b.write(tx, i);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto [x, y] = stm::atomically([&](stm::Tx& tx) {
          return std::pair{a.read(tx), b.read(tx)};
        });
        if (x != y) mismatches.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(StmConcurrentTest, UreadReturnsOnlyCommittedValues) {
  // The writer commits only even values; an uread must never observe an odd
  // (mid-transaction) value.
  stm::TxField<std::int64_t> x(0);
  std::atomic<bool> stop{false};
  std::atomic<int> oddSeen{0};

  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 20000; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        x.write(tx, 2 * i - 1);  // buffered, never visible
        x.write(tx, 2 * i);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto v =
          stm::atomically([&](stm::Tx& tx) { return x.uread(tx); });
      if (v % 2 != 0) oddSeen.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(oddSeen.load(), 0);
}

TEST_P(StmConcurrentTest, OrecCollisionsAreSafe) {
  // Shrink the orec table to 8 entries so unrelated fields conflict; the
  // counters must still be exact.
  auto& orecs = stm::defaultDomain().orecs();
  orecs.setMaskForTest(7);
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1500; ++i) {
        if (t % 2 == 0) {
          stm::atomically([&](stm::Tx& tx) { a.write(tx, a.read(tx) + 1); });
        } else {
          stm::atomically([&](stm::Tx& tx) { b.write(tx, b.read(tx) + 1); });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  orecs.setMaskForTest(stm::OrecTable::kSize - 1);
  EXPECT_EQ(a.loadRelaxed(), 2 * 1500);
  EXPECT_EQ(b.loadRelaxed(), 2 * 1500);
}

TEST_P(StmConcurrentTest, WriteWriteConflictsSerialize) {
  // All threads write the same two fields in opposite orders — a classic
  // deadlock/livelock shape for lock-based code; the STM must make progress
  // and keep the fields equal.
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sync.arrive_and_wait();
      for (int i = 0; i < 1000; ++i) {
        stm::atomically([&](stm::Tx& tx) {
          if (t % 2 == 0) {
            a.write(tx, a.read(tx) + 1);
            b.write(tx, b.read(tx) + 1);
          } else {
            b.write(tx, b.read(tx) + 1);
            a.write(tx, a.read(tx) + 1);
          }
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(a.loadRelaxed(), kThreads * 1000);
  EXPECT_EQ(b.loadRelaxed(), kThreads * 1000);
}

TEST_P(StmConcurrentTest, SnapshotExtensionAllowsLongReaders) {
  // A long read-only transaction scanning many fields while writers update
  // *disjoint* fields: extensions should let it commit without ever aborting
  // on locations it has not read.
  constexpr int kFields = 64;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> readFields;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> writeFields;
  for (int i = 0; i < kFields; ++i) {
    readFields.push_back(std::make_unique<stm::TxField<std::int64_t>>(7));
    writeFields.push_back(std::make_unique<stm::TxField<std::int64_t>>(0));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const int idx = static_cast<int>(i++ % kFields);
      stm::atomically([&](stm::Tx& tx) {
        writeFields[idx]->write(tx, writeFields[idx]->read(tx) + 1);
      });
    }
  });
  for (int iter = 0; iter < 200; ++iter) {
    const std::int64_t sum = stm::atomically([&](stm::Tx& tx) {
      std::int64_t s = 0;
      for (auto& f : readFields) s += f->read(tx);
      return s;
    });
    EXPECT_EQ(sum, 7 * kFields);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
}

TEST_P(StmConcurrentTest, AggregateStatsSumAcrossThreads) {
  stm::defaultDomain().resetStats();
  stm::TxField<std::int64_t> x(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        stm::atomically([&](stm::Tx& tx) { x.write(tx, x.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto agg = stm::defaultDomain().aggregateStats();
  EXPECT_GE(agg.commits, 200u);
  EXPECT_GE(agg.reads, 200u);
}

INSTANTIATE_TEST_SUITE_P(
    LockModes, StmConcurrentTest,
    ::testing::Values(
        LockModeCase{stm::LockMode::Lazy, stm::TmBackend::Orec, "ctl"},
        LockModeCase{stm::LockMode::Eager, stm::TmBackend::Orec, "etl"},
        LockModeCase{stm::LockMode::Lazy, stm::TmBackend::NOrec, "norec"}),
    [](const ::testing::TestParamInfo<LockModeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
