// ShardedMap: hash partitioning over N speculation-friendly trees with a
// shared maintenance pool. Covers partition correctness, the map interface
// against a sequential model, cross-shard move atomicity under concurrency,
// consistent cross-shard range counts, and the aggregated size/stats view.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <map>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "shard/maintenance_scheduler.hpp"
#include "shard/sharded_map.hpp"
#include "trees/tree_checks.hpp"

namespace shard = sftree::shard;
namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::Value;
using sftree::bench::Rng;

namespace {

// Every key lives in exactly the shard shardIndexFor names; the per-shard
// key sets are disjoint and their union is the whole map.
TEST(ShardedMapTest, PartitionIsConsistentAndDisjoint) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 1;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr Key kKeys = 2'000;
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(map.insert(k, k * 10));

  map.quiesce();
  std::size_t total = 0;
  std::vector<Key> all;
  for (int i = 0; i < map.shardCount(); ++i) {
    // Shard walk needs no pause here: the map is quiesced and idle.
    const auto keys = map.shard(i).keysInOrder();
    total += keys.size();
    for (const Key k : keys) {
      EXPECT_EQ(map.shardIndexFor(k), i)
          << "key " << k << " found in a shard the partition does not name";
      all.push_back(k);
    }
    // Each shard should hold a nontrivial slice (mixing hash, 2000 keys
    // over 4 shards: an empty shard would mean broken partitioning).
    EXPECT_GT(keys.size(), 0u);
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kKeys));
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, map.keysInOrder());
}

// The full map interface against a std::map model, single-threaded,
// including same-shard and cross-shard moves.
TEST(ShardedMapTest, MatchesSequentialModel) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 5;  // non-power-of-two on purpose
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  std::map<Key, Value> model;
  Rng rng(99);
  constexpr Key kRange = 512;
  for (int i = 0; i < 20'000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(kRange));
    switch (rng.nextBounded(5)) {
      case 0: {
        const Value v = static_cast<Value>(i);
        EXPECT_EQ(map.insert(k, v), model.emplace(k, v).second);
        break;
      }
      case 1:
        EXPECT_EQ(map.erase(k), model.erase(k) > 0);
        break;
      case 2:
        EXPECT_EQ(map.contains(k), model.count(k) > 0);
        break;
      case 3: {
        const auto got = map.get(k);
        const auto it = model.find(k);
        EXPECT_EQ(got.has_value(), it != model.end());
        if (got && it != model.end()) EXPECT_EQ(*got, it->second);
        break;
      }
      default: {
        const Key to = static_cast<Key>(rng.nextBounded(kRange));
        bool expect = false;
        auto it = model.find(k);
        if (it != model.end() && model.count(to) == 0 && k != to) {
          const Value v = it->second;
          model.erase(it);
          model.emplace(to, v);
          expect = true;
        }
        EXPECT_EQ(map.move(k, to), expect) << "move " << k << "->" << to;
        break;
      }
    }
  }

  map.quiesce();
  std::vector<Key> expectKeys;
  for (const auto& [k, v] : model) expectKeys.push_back(k);
  EXPECT_EQ(map.keysInOrder(), expectKeys);
  EXPECT_EQ(map.size(), model.size());
  EXPECT_EQ(map.sizeEstimate(),
            static_cast<std::int64_t>(model.size()));
  for (int i = 0; i < map.shardCount(); ++i) {
    auto res = trees::checkSFTree(map.shard(i));
    EXPECT_TRUE(res.ok) << "shard " << i << ": " << res.error;
  }
}

// Cross-shard move atomicity: tokens bounce between random slots while
// observers take transactional snapshots; a key observed at both shards (or
// neither) would change the observed cardinality.
TEST(ShardedMapTest, CrossShardMoveIsAtomicUnderConcurrency) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 2;
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 4;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  // Tokens occupy `kTokens` distinct slots out of kRange; movers relocate
  // them; the number of occupied slots is invariant under move.
  constexpr Key kRange = 256;
  constexpr int kTokens = 64;
  for (Key k = 0; k < kTokens; ++k) ASSERT_TRUE(map.insert(k, 1'000 + k));

  constexpr int kMovers = 2;
  constexpr int kMovesPerThread = 25'000;
  std::atomic<bool> stop{false};
  std::atomic<int> snapshotViolations{0};

  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // One transaction spanning all shards: by commit-time consistency the
      // count must equal kTokens at every linearization point.
      const std::size_t seen = map.countRange(0, kRange - 1);
      if (seen != kTokens) snapshotViolations.fetch_add(1);
    }
  });

  std::barrier sync(kMovers);
  std::vector<std::thread> movers;
  for (int t = 0; t < kMovers; ++t) {
    movers.emplace_back([&, t] {
      Rng rng(777 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kMovesPerThread; ++i) {
        const Key from = static_cast<Key>(rng.nextBounded(kRange));
        const Key to = static_cast<Key>(rng.nextBounded(kRange));
        map.move(from, to);
      }
    });
  }
  for (auto& th : movers) th.join();
  stop.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(snapshotViolations.load(), 0)
      << "a snapshot saw a moved key at both shards or at neither";

  map.quiesce();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kTokens));
  EXPECT_EQ(map.sizeEstimate(), kTokens);

  // Every token value survives exactly once (moves never duplicate or drop
  // a payload).
  std::vector<Value> values;
  for (const Key k : map.keysInOrder()) {
    const auto v = map.get(k);
    ASSERT_TRUE(v.has_value());
    values.push_back(*v);
  }
  std::sort(values.begin(), values.end());
  for (int i = 0; i < kTokens; ++i) EXPECT_EQ(values[i], 1'000 + i);
}

// Concurrent inserts/erases from many threads: aggregated size and
// sizeEstimate agree with per-key ground truth.
TEST(ShardedMapTest, AggregatedSizeUnderConcurrency) {
  shard::MaintenanceSchedulerConfig schedCfg;
  schedCfg.workers = 1;  // K=1 < N=8: the pool is deliberately undersized
  shard::MaintenanceScheduler scheduler(schedCfg);

  shard::ShardedMapConfig cfg;
  cfg.shards = 8;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  constexpr int kThreads = 4;
  constexpr Key kRange = 128;
  std::vector<std::atomic<std::int64_t>> net(kRange);
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(4'000 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 5'000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        if (rng.nextBool()) {
          if (map.insert(k, k)) net[k].fetch_add(1);
        } else {
          if (map.erase(k)) net[k].fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::int64_t expected = 0;
  for (Key k = 0; k < kRange; ++k) {
    ASSERT_GE(net[k].load(), 0);
    ASSERT_LE(net[k].load(), 1);
    expected += net[k].load();
  }

  map.quiesce();
  EXPECT_EQ(map.size(), static_cast<std::size_t>(expected));
  EXPECT_EQ(map.sizeEstimate(), expected);

  const auto stats = map.aggregatedStats();
  EXPECT_EQ(stats.sizeEstimate, expected);
  EXPECT_EQ(stats.shardSizeEstimates.size(), 8u);
  std::int64_t sum = 0;
  for (const auto est : stats.shardSizeEstimates) sum += est;
  EXPECT_EQ(sum, expected);
  // The undersized shared pool still performed real restructuring.
  EXPECT_GT(stats.maintenance.traversals, 0u);
}

// countRangeTx composes with other operations in one transaction across
// shards (the paper's §6 argument, now spanning trees).
TEST(ShardedMapTest, ComposedCrossShardTransaction) {
  shard::MaintenanceScheduler scheduler;
  shard::ShardedMapConfig cfg;
  cfg.shards = 3;
  cfg.scheduler = &scheduler;
  shard::ShardedMap map(cfg);

  for (Key k = 0; k < 100; ++k) map.insert(k, k);

  // Atomically: count, insert into whatever shard 1000 hashes to, recount.
  const auto counts = stm::atomically([&](stm::Tx& tx) {
    const std::size_t before = map.countRangeTx(tx, 0, 2'000);
    map.insertTx(tx, 1'000, 1);
    const std::size_t after = map.countRangeTx(tx, 0, 2'000);
    return std::make_pair(before, after);
  });
  EXPECT_EQ(counts.first, 100u);
  EXPECT_EQ(counts.second, 101u);
  EXPECT_TRUE(map.contains(1'000));
}

// Without a scheduler every shard runs its own dedicated maintenance
// thread, exactly like N standalone paper trees.
TEST(ShardedMapTest, DedicatedThreadsModeStillWorks) {
  shard::ShardedMapConfig cfg;
  cfg.shards = 2;
  cfg.scheduler = nullptr;
  shard::ShardedMap map(cfg);

  for (Key k = 0; k < 600; ++k) map.insert(k, k);
  for (Key k = 0; k < 600; k += 3) map.erase(k);
  map.quiesce();
  EXPECT_EQ(map.size(), 400u);
  for (int i = 0; i < map.shardCount(); ++i) {
    EXPECT_TRUE(map.shard(i).maintenanceRunning());
  }
}

}  // namespace
