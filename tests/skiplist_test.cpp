// Speculation-friendly skip list (the paper's §7 future-work direction):
// sequential semantics, decoupled deletion behaviour, concurrent
// linearizability, maintenance unlinking and reclamation.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "bench_core/rng.hpp"
#include "structures/sf_skiplist.hpp"

namespace stm = sftree::stm;
using sftree::Key;
using sftree::bench::Rng;
using sftree::structures::SFSkipList;

namespace {

SFSkipList::Config manualConfig() {
  SFSkipList::Config cfg;
  cfg.startMaintenance = false;
  return cfg;
}

TEST(SkipListTest, BasicSetSemantics) {
  SFSkipList sl(manualConfig());
  EXPECT_FALSE(sl.contains(5));
  EXPECT_TRUE(sl.insert(5, 50));
  EXPECT_FALSE(sl.insert(5, 51));
  EXPECT_EQ(sl.get(5), 50);
  EXPECT_TRUE(sl.erase(5));
  EXPECT_FALSE(sl.erase(5));
  EXPECT_FALSE(sl.contains(5));
}

TEST(SkipListTest, KeysComeOutSorted) {
  SFSkipList sl(manualConfig());
  for (Key k : {9, 1, 5, 3, 7}) sl.insert(k, k);
  EXPECT_EQ(sl.keysInOrder(), (std::vector<Key>{1, 3, 5, 7, 9}));
}

TEST(SkipListTest, EraseIsLogicalUntilMaintenanceRuns) {
  SFSkipList sl(manualConfig());
  for (Key k = 0; k < 32; ++k) sl.insert(k, k);
  for (Key k = 0; k < 32; k += 2) sl.erase(k);
  // Decoupling: abstraction shrinks, structure does not.
  EXPECT_EQ(sl.abstractSize(), 16u);
  EXPECT_EQ(sl.structuralSize(), 32u);
  sl.quiesceNow();
  EXPECT_EQ(sl.structuralSize(), 16u);
  EXPECT_EQ(sl.unlinksForTest(), 16u);
  EXPECT_EQ(sl.limboPending(), 0u);  // quiesced: everything reclaimed
}

TEST(SkipListTest, ReviveDeletedTower) {
  SFSkipList sl(manualConfig());
  sl.insert(7, 70);
  sl.erase(7);
  EXPECT_TRUE(sl.insert(7, 71));  // revives in place
  EXPECT_EQ(sl.get(7), 71);
  EXPECT_EQ(sl.structuralSize(), 1u);
}

TEST(SkipListTest, UnlinkSkippedWhenRevivedConcurrently) {
  SFSkipList sl(manualConfig());
  sl.insert(7, 70);
  sl.erase(7);
  sl.insert(7, 71);  // revive before maintenance ever ran
  sl.quiesceNow();
  EXPECT_TRUE(sl.contains(7));
  EXPECT_EQ(sl.unlinksForTest(), 0u);
}

TEST(SkipListTest, SequentialFuzzAgainstStdMap) {
  SFSkipList sl(manualConfig());
  std::map<Key, sftree::Value> reference;
  Rng rng(2024);
  for (int i = 0; i < 6000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(256));
    switch (rng.nextBounded(4)) {
      case 0: {
        const bool expect = reference.emplace(k, k).second;
        ASSERT_EQ(sl.insert(k, k), expect) << "op " << i;
        break;
      }
      case 1: {
        const bool expect = reference.erase(k) > 0;
        ASSERT_EQ(sl.erase(k), expect) << "op " << i;
        break;
      }
      default:
        ASSERT_EQ(sl.contains(k), reference.count(k) > 0) << "op " << i;
        break;
    }
    if (i % 1500 == 1499) sl.quiesceNow();
  }
  sl.quiesceNow();
  std::vector<Key> expectKeys;
  for (const auto& [k, v] : reference) expectKeys.push_back(k);
  EXPECT_EQ(sl.keysInOrder(), expectKeys);
}

TEST(SkipListTest, ComposesWithTransactions) {
  SFSkipList a(manualConfig());
  SFSkipList b(manualConfig());
  a.insert(1, 10);
  // Atomic transfer between two skip lists.
  stm::atomically([&](stm::Tx& tx) {
    const auto v = a.getTx(tx, 1);
    ASSERT_TRUE(v.has_value());
    a.eraseTx(tx, 1);
    b.insertTx(tx, 1, *v);
  });
  EXPECT_FALSE(a.contains(1));
  EXPECT_EQ(b.get(1), 10);
}

TEST(SkipListTest, PerKeyLinearizabilityUnderChurn) {
  SFSkipList sl;  // background maintenance ON
  constexpr int kThreads = 4;
  constexpr Key kRange = 64;
  std::vector<std::atomic<std::int64_t>> inserted(kRange);
  std::vector<std::atomic<std::int64_t>> removed(kRange);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(42 + t);
      for (int i = 0; i < 6000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        switch (rng.nextBounded(3)) {
          case 0:
            if (sl.insert(k, k)) inserted[k].fetch_add(1);
            break;
          case 1:
            if (sl.erase(k)) removed[k].fetch_add(1);
            break;
          default:
            sl.contains(k);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  sl.stopMaintenance();
  sl.quiesceNow();
  for (Key k = 0; k < kRange; ++k) {
    const auto delta = inserted[k].load() - removed[k].load();
    ASSERT_GE(delta, 0) << "key " << k;
    ASSERT_LE(delta, 1) << "key " << k;
    EXPECT_EQ(sl.contains(k), delta == 1) << "key " << k;
  }
  // Structure reflects abstraction after quiescence (no tombstone buildup).
  EXPECT_EQ(sl.structuralSize(), sl.abstractSize());
}

TEST(SkipListTest, StableKeyVisibleThroughMaintenanceChurn) {
  SFSkipList sl;
  sl.insert(1'000'000, 1);
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};
  std::thread churn([&] {
    Rng rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = static_cast<Key>(rng.nextBounded(512));
      if (rng.nextBool()) {
        sl.insert(k, k);
      } else {
        sl.erase(k);
      }
    }
  });
  for (int i = 0; i < 20000; ++i) {
    if (!sl.contains(1'000'000)) misses.fetch_add(1);
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  EXPECT_EQ(misses.load(), 0);
}

TEST(SkipListTest, TowersSpanMultipleLevels) {
  SFSkipList sl(manualConfig());
  for (Key k = 0; k < 2048; ++k) sl.insert(k, k);
  // With p=1/2 towers, lookups must behave logarithmically: spot-check via
  // the transactional read count of a contains.
  stm::defaultDomain().resetStats();
  auto& stats = stm::threadStats();
  stats.reset();
  stats.beginOp();
  sl.contains(1024);
  stats.endOp();
  // A linear scan would read ~1024 pointers; a healthy skip list far fewer.
  EXPECT_LT(stats.maxOpReads, 200u);
}

}  // namespace
