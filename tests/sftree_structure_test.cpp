// Structure-level behaviour of the speculation-friendly tree: logical
// deletion, decoupled physical removal, local rotations (portable and
// copy-on-rotate), balance convergence, and quiescence-based reclamation.
#include <gtest/gtest.h>

#include <thread>

#include "bench_core/rng.hpp"
#include "trees/sftree.hpp"
#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
using sftree::Key;
using sftree::bench::Rng;
using trees::OpsVariant;
using trees::RemState;
using trees::SFNode;
using trees::SFTree;
using trees::SFTreeConfig;

namespace {

SFTreeConfig manualConfig(OpsVariant ops) {
  SFTreeConfig cfg;
  cfg.ops = ops;
  cfg.startMaintenance = false;  // tests drive maintenance by hand
  return cfg;
}

class SFTreeStructureTest : public ::testing::TestWithParam<OpsVariant> {};

TEST_P(SFTreeStructureTest, LogicalDeletionLeavesNodeInPlace) {
  SFTree tree(manualConfig(GetParam()));
  tree.insert(10, 1);
  tree.insert(5, 2);
  tree.insert(15, 3);
  EXPECT_TRUE(tree.erase(10));
  // Abstraction: gone. Structure: still three nodes (no maintenance ran).
  EXPECT_FALSE(tree.contains(10));
  EXPECT_EQ(tree.abstractSize(), 2u);
  EXPECT_EQ(tree.structuralSize(), 3u);
}

TEST_P(SFTreeStructureTest, MaintenancePhysicallyRemovesDeletedLeaf) {
  SFTree tree(manualConfig(GetParam()));
  tree.insert(10, 1);
  tree.insert(5, 2);
  tree.erase(5);
  tree.quiesceNow();
  EXPECT_EQ(tree.structuralSize(), 1u);
  EXPECT_EQ(tree.abstractSize(), 1u);
  const auto stats = tree.maintenanceStats();
  EXPECT_EQ(stats.removals, 1u);
}

TEST_P(SFTreeStructureTest, NodesWithTwoChildrenAreNotRemoved) {
  SFTree tree(manualConfig(GetParam()));
  tree.insert(10, 1);
  tree.insert(5, 2);
  tree.insert(15, 3);
  tree.erase(10);  // interior node with two children
  tree.quiesceNow();
  // The paper only removes nodes with at most one child; 10 must survive
  // physically (still logically deleted).
  EXPECT_EQ(tree.abstractSize(), 2u);
  EXPECT_EQ(tree.structuralSize(), 3u);
  EXPECT_FALSE(tree.contains(10));
}

TEST_P(SFTreeStructureTest, DeletedInteriorNodeRemovedOnceChildLeaves) {
  SFTree tree(manualConfig(GetParam()));
  tree.insert(10, 1);
  tree.insert(5, 2);
  tree.insert(15, 3);
  tree.erase(10);
  tree.erase(5);
  tree.quiesceNow();
  // 5 (leaf) goes first, then 10 has one child and goes too.
  EXPECT_EQ(tree.structuralSize(), 1u);
  EXPECT_EQ(tree.keysInOrder(), (std::vector<Key>{15}));
}

TEST_P(SFTreeStructureTest, ReviveDeletedNodeKeepsStructure) {
  SFTree tree(manualConfig(GetParam()));
  tree.insert(10, 1);
  tree.erase(10);
  EXPECT_TRUE(tree.insert(10, 42));  // revives the logically deleted node
  EXPECT_EQ(tree.get(10), 42);
  EXPECT_EQ(tree.structuralSize(), 1u);
}

TEST_P(SFTreeStructureTest, AscendingInsertionRebalances) {
  SFTree tree(manualConfig(GetParam()));
  constexpr Key kN = 1024;
  for (Key k = 0; k < kN; ++k) tree.insert(k, k);
  // Without maintenance the tree is a right spine.
  EXPECT_EQ(tree.height(), static_cast<int>(kN));
  tree.quiesceNow();
  // Local rotations must converge to logarithmic height (log2(1024) == 10;
  // height-relaxed AVL gives ~1.44 log2 n, leave generous slack).
  EXPECT_LE(tree.height(), 26);
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  // Everything still present.
  EXPECT_EQ(tree.abstractSize(), static_cast<std::size_t>(kN));
}

TEST_P(SFTreeStructureTest, RotationsPreserveContents) {
  SFTree tree(manualConfig(GetParam()));
  Rng rng(5);
  std::vector<Key> keys;
  for (int i = 0; i < 512; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(100000));
    if (tree.insert(k, k)) keys.push_back(k);
  }
  tree.quiesceNow();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(tree.keysInOrder(), keys);
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_P(SFTreeStructureTest, LimboDrainsAfterQuiescence) {
  SFTree tree(manualConfig(GetParam()));
  for (Key k = 0; k < 256; ++k) tree.insert(k, k);
  for (Key k = 0; k < 256; k += 2) tree.erase(k);
  tree.quiesceNow();
  EXPECT_EQ(tree.limboPending(), 0u);
  const auto stats = tree.maintenanceStats();
  EXPECT_GT(stats.removals, 0u);
  EXPECT_EQ(stats.nodesFreed, stats.nodesRetired);
}

TEST_P(SFTreeStructureTest, BackgroundMaintenanceUnderChurn) {
  SFTreeConfig cfg;
  cfg.ops = GetParam();
  cfg.startMaintenance = true;
  SFTree tree(cfg);
  constexpr int kThreads = 3;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(10 + t);
      for (int i = 0; i < 12000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(2048));
        switch (rng.nextBounded(3)) {
          case 0: tree.insert(k, k); break;
          case 1: tree.erase(k); break;
          default: tree.contains(k); break;
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  tree.stopMaintenance();
  tree.quiesceNow();
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  // With removals enabled the physical size stays close to the abstract
  // size after quiescing (only interior deleted nodes linger).
  EXPECT_LE(tree.structuralSize(), tree.abstractSize() * 2 + 16);
}

TEST_P(SFTreeStructureTest, BiasedChurnStaysBalancedWithMaintenance) {
  SFTreeConfig cfg;
  cfg.ops = GetParam();
  cfg.startMaintenance = true;
  SFTree tree(cfg);
  // Monotone inserts (the worst case for an unbalanced tree) while
  // maintenance runs: final height must be logarithmic-ish.
  for (Key k = 0; k < 4096; ++k) tree.insert(k, k);
  tree.stopMaintenance();
  tree.quiesceNow();
  EXPECT_LE(tree.height(), 30);  // log2(4096) == 12, generous slack
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, SFTreeStructureTest,
    ::testing::Values(OpsVariant::Portable, OpsVariant::Optimized),
    [](const ::testing::TestParamInfo<OpsVariant>& info) {
      return info.param == OpsVariant::Portable ? "portable" : "optimized";
    });

// --- optimized-variant specifics -------------------------------------------

TEST(SFTreeOptimizedTest, CopyOnRotateMarksVictimRemoved) {
  SFTree tree(manualConfig(OpsVariant::Optimized));
  // Right spine 1 -> 2 -> 3 triggers a left rotation at node 1.
  tree.insert(1, 1);
  tree.insert(2, 2);
  tree.insert(3, 3);
  SFNode* root = tree.rootForTest();
  SFNode* n1 = root->left.loadRelaxed();
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->key, 1);
  tree.quiesceNow();
  // Node 1 was removed by a left rotation and replaced by a copy.
  EXPECT_EQ(n1->removed.loadRelaxed(), RemState::RemovedByLeftRot);
  // Its children still lead back into the tree (escape path, Lemma 11).
  EXPECT_EQ(tree.keysInOrder(), (std::vector<Key>{1, 2, 3}));
  EXPECT_LE(tree.height(), 2);
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(SFTreeOptimizedTest, RemovalSetsEscapePointersToParent) {
  SFTree tree(manualConfig(OpsVariant::Optimized));
  tree.insert(10, 1);
  tree.insert(5, 2);
  SFNode* root = tree.rootForTest();
  SFNode* n10 = root->left.loadRelaxed();
  SFNode* n5 = n10->left.loadRelaxed();
  ASSERT_EQ(n5->key, 5);
  tree.erase(5);
  // Hold an operation guard so the limbo cannot free n5 while we look at it.
  {
    sftree::gc::OpGuard guard(tree.registryForTest());
    tree.quiesceNow();
    EXPECT_EQ(n5->removed.loadRelaxed(), RemState::Removed);
    EXPECT_EQ(n5->left.loadRelaxed(), n10);
    EXPECT_EQ(n5->right.loadRelaxed(), n10);
  }
}

TEST(SFTreeOptimizedTest, PortableRotationKeepsNodeInTree) {
  SFTree tree(manualConfig(OpsVariant::Portable));
  tree.insert(1, 1);
  tree.insert(2, 2);
  tree.insert(3, 3);
  SFNode* root = tree.rootForTest();
  SFNode* n1 = root->left.loadRelaxed();
  tree.quiesceNow();
  // Portable rotation is in-place: node 1 is demoted but never removed.
  EXPECT_EQ(n1->removed.loadRelaxed(), RemState::NotRemoved);
  EXPECT_EQ(tree.keysInOrder(), (std::vector<Key>{1, 2, 3}));
  const auto stats = tree.maintenanceStats();
  EXPECT_EQ(stats.nodesRetired, 0u);  // nothing leaves the tree
}

TEST(SFTreeOptimizedTest, FindReachesKeyThroughRemovedNodes) {
  // A reader that saw a node before its removal must still find keys via
  // escape pointers. We simulate by capturing a node, removing it, then
  // traversing from it manually the way findOptimized would.
  SFTree tree(manualConfig(OpsVariant::Optimized));
  for (Key k : {16, 8, 24, 4, 12, 20, 28}) tree.insert(k, k);
  SFNode* root = tree.rootForTest();
  SFNode* n16 = root->left.loadRelaxed();
  SFNode* n8 = n16->left.loadRelaxed();
  ASSERT_EQ(n8->key, 8);
  SFNode* n4 = n8->left.loadRelaxed();
  ASSERT_EQ(n4->key, 4);
  tree.erase(4);
  {
    sftree::gc::OpGuard guard(tree.registryForTest());
    tree.quiesceNow();
    ASSERT_EQ(n4->removed.loadRelaxed(), RemState::Removed);
    // Escape pointers climb back to the parent (node 8).
    EXPECT_EQ(n4->left.loadRelaxed(), n8);
    // All remaining keys are still reachable through the abstraction.
    for (Key k : {16, 8, 24, 12, 20, 28}) {
      EXPECT_TRUE(tree.contains(k)) << k;
    }
  }
}

TEST(SFTreeMaintenanceTest, MaintenanceStatsAccumulate) {
  SFTreeConfig cfg;
  cfg.startMaintenance = false;
  SFTree tree(cfg);
  for (Key k = 0; k < 128; ++k) tree.insert(k, k);
  tree.quiesceNow();
  const auto stats = tree.maintenanceStats();
  EXPECT_GT(stats.traversals, 0u);
  EXPECT_GT(stats.rotations, 0u);
}

TEST(SFTreeMaintenanceTest, StartStopIsIdempotent) {
  SFTree tree((SFTreeConfig()));
  EXPECT_TRUE(tree.maintenanceRunning());
  tree.startMaintenance();  // no-op
  tree.stopMaintenance();
  EXPECT_FALSE(tree.maintenanceRunning());
  tree.stopMaintenance();  // no-op
  tree.startMaintenance();
  EXPECT_TRUE(tree.maintenanceRunning());
}

TEST(SFTreeMaintenanceTest, NoRestructuringConfigNeverRotates) {
  SFTreeConfig cfg;
  cfg.rotations = false;
  cfg.removals = false;
  cfg.startMaintenance = false;
  SFTree tree(cfg);
  for (Key k = 0; k < 256; ++k) tree.insert(k, k);
  tree.erase(0);
  tree.quiesceNow();
  // NRtree semantics: a pure spine, logically deleted node still present.
  EXPECT_EQ(tree.height(), 256);
  EXPECT_EQ(tree.structuralSize(), 256u);
  const auto stats = tree.maintenanceStats();
  EXPECT_EQ(stats.rotations, 0u);
  EXPECT_EQ(stats.removals, 0u);
}

}  // namespace
