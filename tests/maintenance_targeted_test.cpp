// Targeted (violation-queue-fed) maintenance: convergence without full
// sweeps, commit-time capture/dedup semantics, and the enqueue-at-commit vs
// drain/rotation race under real concurrency (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "trees/sftree.hpp"
#include "trees/tree_checks.hpp"
#include "trees/violation_queue.hpp"

namespace trees = sftree::trees;
using sftree::Key;

namespace {

// Targeted-only configuration: no maintenance thread, and the periodic
// full-sweep fallback disabled, so every bit of restructuring must come
// from draining the violation queue.
trees::SFTreeConfig targetedOnly() {
  trees::SFTreeConfig cfg;
  cfg.ops = trees::OpsVariant::Optimized;
  cfg.startMaintenance = false;
  cfg.targetedMaintenance = true;
  cfg.fullSweepPeriod = 0;
  return cfg;
}

// Drives targeted passes until the queue is empty and a pass performs no
// structural change. Returns the number of passes.
int drainToFixpoint(trees::SFTree& tree, int maxPasses = 10'000) {
  for (int pass = 1; pass <= maxPasses; ++pass) {
    const bool didWork = tree.runMaintenancePass();
    if (!didWork && tree.violationQueueDepth() == 0) return pass;
  }
  ADD_FAILURE() << "targeted maintenance did not reach a fixpoint";
  return maxPasses;
}

double log2OfAtLeastOne(std::size_t n) {
  return std::log2(static_cast<double>(std::max<std::size_t>(n, 1)));
}

// Sequential fill is the worst case for a BST: with sweeps disabled, the
// drained insertion keys alone must rebalance the degenerate list to
// logarithmic height.
TEST(MaintenanceTargetedTest, SequentialFillConvergesWithoutSweeps) {
  trees::SFTree tree(targetedOnly());
  constexpr Key kKeys = 4096;
  for (Key k = 0; k < kKeys; ++k) tree.insert(k, k);

  drainToFixpoint(tree);

  const auto ms = tree.maintenanceStats();
  EXPECT_EQ(ms.fullSweeps, 0u);
  EXPECT_GT(ms.rotations, 0u);
  EXPECT_EQ(tree.violationQueueDepth(), 0u);
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;

  // AVL-ish bound: path repair works from stored estimates, so allow a
  // little slack over the strict 1.44 log2(n) AVL height.
  const double bound = 1.7 * log2OfAtLeastOne(tree.structuralSize()) + 3.0;
  EXPECT_LE(tree.height(), bound)
      << "height " << tree.height() << " for " << tree.structuralSize()
      << " nodes";
}

// Random churn: inserts and erases feed the queue; draining must both keep
// the height logarithmic and physically remove the deleted nodes — all with
// zero full sweeps.
TEST(MaintenanceTargetedTest, RandomChurnConvergesAndRemovesWithoutSweeps) {
  trees::SFTree tree(targetedOnly());
  constexpr Key kRange = 8192;
  std::mt19937_64 rng(7);
  std::vector<bool> present(kRange, false);

  for (int i = 0; i < 60'000; ++i) {
    const Key k = static_cast<Key>(rng() % kRange);
    if ((rng() & 3) != 0) {  // 75% inserts
      if (tree.insert(k, k)) present[static_cast<std::size_t>(k)] = true;
    } else {
      if (tree.erase(k)) present[static_cast<std::size_t>(k)] = false;
    }
    // Interleave drains so maintenance races the churn's enqueue pattern
    // (single-threaded here; the concurrent version is stressed below).
    if (i % 1024 == 0) tree.runMaintenancePass();
  }
  drainToFixpoint(tree);

  const auto ms = tree.maintenanceStats();
  EXPECT_EQ(ms.fullSweeps, 0u);
  EXPECT_GT(ms.removals, 0u);
  EXPECT_GT(ms.queue.drained, 0u);
  EXPECT_EQ(tree.violationQueueDepth(), 0u);

  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;

  // The abstraction must be exactly the tracked set.
  std::vector<Key> expected;
  for (Key k = 0; k < kRange; ++k) {
    if (present[static_cast<std::size_t>(k)]) expected.push_back(k);
  }
  EXPECT_EQ(tree.keysInOrder(), expected);

  const double bound = 1.7 * log2OfAtLeastOne(tree.structuralSize()) + 3.0;
  EXPECT_LE(tree.height(), bound);
}

// Commit-time capture must be transactional: aborted updates publish
// nothing, repeated updates on one key dedup down to the entries the drain
// actually needs.
TEST(MaintenanceTargetedTest, CaptureIsCommittedAndDeduped) {
  trees::SFTree tree(targetedOnly());
  tree.insert(1, 1);
  const auto afterInsert = tree.maintenanceStats().queue;
  EXPECT_EQ(afterInsert.captured, 1u);
  EXPECT_EQ(afterInsert.enqueued, 1u);

  // Failed operations commit no update and must not capture: erase of a
  // missing key, duplicate insert.
  tree.erase(99);
  tree.insert(1, 1);
  EXPECT_EQ(tree.maintenanceStats().queue.captured, 1u);

  // Churn one key without draining: every erase is a capture (revives are
  // abstraction-only and publish nothing). The dedup claim spaces are per
  // kind — an erase must never be absorbed into a pending *insert* entry,
  // whose repair skips the removal probe — so the first erase enqueues a
  // second entry and the remaining 99 dedup against the kErase claim.
  for (int i = 0; i < 100; ++i) {
    tree.erase(1);
    tree.insert(1, 1);
  }
  const auto q = tree.maintenanceStats().queue;
  EXPECT_EQ(q.captured, 101u);
  EXPECT_EQ(q.enqueued, 2u);
  EXPECT_EQ(q.deduped, 99u);
  EXPECT_EQ(q.enqueued + q.deduped + q.dropped, q.captured);
  EXPECT_LE(tree.violationQueueDepth(), 2u);

  drainToFixpoint(tree);
  EXPECT_EQ(tree.violationQueueDepth(), 0u);
}

// The queue survives keys whose nodes disappear before the drain gets to
// them: erase + physical removal via one entry, then a second entry for the
// same key drains against a tree that no longer contains it.
TEST(MaintenanceTargetedTest, StaleEntriesDrainHarmlessly) {
  trees::SFTree tree(targetedOnly());
  for (Key k = 0; k < 64; ++k) tree.insert(k, k);
  drainToFixpoint(tree);

  tree.erase(10);
  drainToFixpoint(tree);  // physically removes 10's node
  // A fresh violation for the now-absent key must be a no-op.
  tree.insert(10, 10);
  tree.erase(10);
  drainToFixpoint(tree);

  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(tree.abstractSize(), 63u);
}

// TSan stress: enqueue-at-commit (mutators) racing drain/rotation (the
// dedicated maintenance thread, frequent fallback sweeps). The tracked net
// insert count must match the final tree exactly.
TEST(MaintenanceTargetedTest, ConcurrentChurnRacingDrain) {
  trees::SFTreeConfig cfg;
  cfg.ops = trees::OpsVariant::Optimized;
  cfg.txKind = sftree::stm::TxKind::Elastic;  // spiciest update mode
  cfg.targetedMaintenance = true;
  cfg.fullSweepPeriod = 8;
  trees::SFTree tree(cfg);  // dedicated maintenance thread running

  constexpr int kThreads = 4;
  constexpr Key kRange = 2048;
  std::atomic<std::int64_t> net{0};
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(91 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 3000; ++i) {
        const Key k = static_cast<Key>(rng() % kRange);
        if ((rng() & 1) != 0) {
          if (tree.insert(k, k)) net.fetch_add(1);
        } else {
          if (tree.erase(k)) net.fetch_sub(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  tree.stopMaintenance();
  tree.quiesceNow();
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(tree.abstractSize(),
            static_cast<std::size_t>(net.load()));
  EXPECT_EQ(tree.violationQueueDepth(), 0u);

  const auto keys = tree.keysInOrder();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate key in the abstraction";
}

// The violation queue itself: producer/consumer counters stay consistent
// under concurrent publishes.
TEST(MaintenanceTargetedTest, QueueCountersConsistentUnderConcurrentPublish) {
  trees::ViolationQueue q;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(5 + t);
      for (int i = 0; i < kPerThread; ++i) {
        q.publish(static_cast<Key>(rng() % 512));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::uint64_t consumed = 0;
  consumed += q.drain(
      [](Key, trees::ViolationKind, std::uint32_t) { return true; });
  const auto st = q.stats();
  EXPECT_EQ(st.captured,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(st.enqueued + st.deduped + st.dropped, st.captured);
  EXPECT_EQ(st.drained, consumed);
  EXPECT_EQ(q.depth(), 0u);
}

// Per-kind claim spaces: an entry of one kind never absorbs a capture of
// another (dedup may suppress duplicates, never lose a violation), and
// deduped access captures are preserved as weight on the pending entry.
TEST(MaintenanceTargetedTest, QueueKindsDedupIndependentlyAndWeighAccess) {
  trees::ViolationQueue q;
  EXPECT_TRUE(q.publish(7, trees::ViolationKind::kInsert));
  // Same key, different kind: must enqueue, not dedup against the insert.
  EXPECT_TRUE(q.publish(7, trees::ViolationKind::kErase));
  // Same key and kind: dedups.
  EXPECT_FALSE(q.publish(7, trees::ViolationKind::kInsert));

  // Access ticks: the first capture enqueues, the next five are absorbed
  // into the pending entry's weight instead of vanishing.
  EXPECT_TRUE(q.publish(7, trees::ViolationKind::kAccess));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(q.publish(7, trees::ViolationKind::kAccess));
  }

  std::uint32_t accessWeight = 0;
  std::uint64_t structuralWeight = 0;
  std::size_t entries = 0;
  q.drain([&](Key k, trees::ViolationKind kind, std::uint32_t weight) {
    EXPECT_EQ(k, 7);
    ++entries;
    if (kind == trees::ViolationKind::kAccess) {
      accessWeight += weight;
    } else {
      structuralWeight += weight;
    }
    return true;
  });
  EXPECT_EQ(entries, 3u);
  EXPECT_EQ(accessWeight, 6u);      // 1 entry + 5 absorbed ticks
  EXPECT_EQ(structuralWeight, 2u);  // structural kinds always weigh 1

  const auto st = q.stats();
  EXPECT_EQ(st.captured, 9u);
  EXPECT_EQ(st.enqueued, 3u);
  EXPECT_EQ(st.deduped, 6u);
  EXPECT_EQ(st.absorbedTicks, 5u);
  EXPECT_EQ(q.depth(), 0u);

  // With the claims released by the drain, fresh captures enqueue again.
  EXPECT_TRUE(q.publish(7, trees::ViolationKind::kAccess));
}

}  // namespace
