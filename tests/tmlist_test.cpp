// Transactional linked list tests (vacation substrate).
#include <gtest/gtest.h>

#include <thread>

#include "bench_core/rng.hpp"
#include "stm/stm.hpp"
#include "structures/tmlist.hpp"

namespace stm = sftree::stm;
using sftree::Key;
using sftree::bench::Rng;
using sftree::structures::TMList;

namespace {

TEST(TMListTest, InsertAndLookup) {
  TMList list;
  EXPECT_TRUE(list.insert(3, 30));
  EXPECT_TRUE(list.insert(1, 10));
  EXPECT_TRUE(list.insert(2, 20));
  EXPECT_FALSE(list.insert(2, 99));
  EXPECT_EQ(list.get(2), 20);
  EXPECT_EQ(list.size(), 3u);
}

TEST(TMListTest, ItemsAreSorted) {
  TMList list;
  for (Key k : {5, 1, 4, 2, 3}) list.insert(k, 10 * k);
  const auto items = list.items();
  ASSERT_EQ(items.size(), 5u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].first, static_cast<Key>(i + 1));
    EXPECT_EQ(items[i].second, 10 * static_cast<Key>(i + 1));
  }
}

TEST(TMListTest, EraseHeadMiddleTail) {
  TMList list;
  for (Key k : {1, 2, 3, 4}) list.insert(k, k);
  EXPECT_TRUE(list.erase(1));  // head
  EXPECT_TRUE(list.erase(3));  // middle
  EXPECT_TRUE(list.erase(4));  // tail
  EXPECT_FALSE(list.erase(9));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(2));
}

TEST(TMListTest, UpdateChangesValueInPlace) {
  TMList list;
  list.insert(1, 10);
  stm::atomically([&](stm::Tx& tx) { EXPECT_TRUE(list.updateTx(tx, 1, 11)); });
  EXPECT_EQ(list.get(1), 11);
  stm::atomically([&](stm::Tx& tx) { EXPECT_FALSE(list.updateTx(tx, 2, 0)); });
}

TEST(TMListTest, ForEachVisitsInOrder) {
  TMList list;
  for (Key k : {3, 1, 2}) list.insert(k, k * 100);
  std::vector<Key> seen;
  stm::atomically([&](stm::Tx& tx) {
    seen.clear();  // transaction may retry
    list.forEachTx(tx, [&](Key k, sftree::Value v) {
      EXPECT_EQ(v, k * 100);
      seen.push_back(k);
    });
  });
  EXPECT_EQ(seen, (std::vector<Key>{1, 2, 3}));
}

TEST(TMListTest, ComposesWithOtherListsAtomically) {
  // Move an element between lists atomically; a concurrent observer must
  // always see exactly one copy in the union.
  TMList a;
  TMList b;
  a.insert(7, 70);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread mover([&] {
    for (int i = 0; i < 4000; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        if (a.containsTx(tx, 7)) {
          a.eraseTx(tx, 7);
          b.insertTx(tx, 7, 70);
        } else {
          b.eraseTx(tx, 7);
          a.insertTx(tx, 7, 70);
        }
      });
    }
    stop.store(true);
  });
  std::thread observer([&] {
    while (!stop.load()) {
      const int copies = stm::atomically([&](stm::Tx& tx) {
        return (a.containsTx(tx, 7) ? 1 : 0) + (b.containsTx(tx, 7) ? 1 : 0);
      });
      if (copies != 1) anomalies.fetch_add(1);
    }
  });
  mover.join();
  observer.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(TMListTest, ConcurrentDisjointInserts) {
  TMList list;
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (Key i = 0; i < kPerThread; ++i) {
        EXPECT_TRUE(list.insert(static_cast<Key>(t) * kPerThread + i, i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  const auto items = list.items();
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].first, items[i].first);
  }
}

TEST(TMListTest, AbortedInsertDoesNotLeakOrPublish) {
  TMList list;
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    list.insertTx(tx, 42, 1);
    if (attempts == 1) tx.restart();
  });
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(list.size(), 1u);
}

}  // namespace
