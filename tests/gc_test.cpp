// Quiescence-based reclamation tests (paper §3.4 protocol).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "gc/limbo_list.hpp"
#include "gc/thread_registry.hpp"

namespace gc = sftree::gc;

namespace {

struct Tracked {
  static std::atomic<int> liveCount;
  Tracked() { liveCount.fetch_add(1); }
  ~Tracked() { liveCount.fetch_sub(1); }
  static void deleter(void* p) { delete static_cast<Tracked*>(p); }
};
std::atomic<int> Tracked::liveCount{0};

TEST(ThreadRegistryTest, SlotIsStablePerThread) {
  gc::ThreadRegistry reg;
  auto* s1 = &reg.currentSlot();
  auto* s2 = &reg.currentSlot();
  EXPECT_EQ(s1, s2);
}

TEST(ThreadRegistryTest, DistinctThreadsGetDistinctSlots) {
  gc::ThreadRegistry reg;
  auto* mine = &reg.currentSlot();
  gc::ThreadRegistry::Slot* theirs = nullptr;
  std::thread t([&] { theirs = &reg.currentSlot(); });
  t.join();
  EXPECT_NE(mine, theirs);
}

TEST(ThreadRegistryTest, SlotsAreReusedAfterThreadExit) {
  gc::ThreadRegistry reg;
  (void)reg.currentSlot();
  std::thread t1([&] { (void)reg.currentSlot(); });
  t1.join();
  const auto count = reg.slotCountForTest();
  std::thread t2([&] { (void)reg.currentSlot(); });
  t2.join();
  EXPECT_EQ(reg.slotCountForTest(), count);
}

TEST(ThreadRegistryTest, QuiescedWhenNothingPending) {
  gc::ThreadRegistry reg;
  (void)reg.currentSlot();
  const auto snap = reg.snapshot();
  EXPECT_TRUE(reg.quiescedSince(snap));
}

TEST(ThreadRegistryTest, PendingOperationBlocksQuiescence) {
  gc::ThreadRegistry reg;
  auto& slot = reg.currentSlot();
  slot.pending.store(true);
  const auto snap = reg.snapshot();
  EXPECT_FALSE(reg.quiescedSince(snap));
  // Completing the operation unblocks collection.
  slot.completed.fetch_add(1);
  slot.pending.store(false);
  EXPECT_TRUE(reg.quiescedSince(snap));
}

TEST(ThreadRegistryTest, CounterAdvanceAloneIsEnough) {
  // Thread finished the snapshotted op and immediately started a new one:
  // pending is true again but the counter advanced, so the old nodes are
  // unreachable to it.
  gc::ThreadRegistry reg;
  auto& slot = reg.currentSlot();
  slot.pending.store(true);
  const auto snap = reg.snapshot();
  slot.completed.fetch_add(1);
  slot.pending.store(true);  // new operation in flight
  EXPECT_TRUE(reg.quiescedSince(snap));
}

TEST(OpGuardTest, BracketsPendingAndCounter) {
  gc::ThreadRegistry reg;
  auto& slot = reg.currentSlot();
  const auto before = slot.completed.load();
  {
    gc::OpGuard g(reg);
    EXPECT_TRUE(slot.pending.load());
  }
  EXPECT_FALSE(slot.pending.load());
  EXPECT_EQ(slot.completed.load(), before + 1);
}

TEST(LimboListTest, CollectsAfterQuiescence) {
  gc::ThreadRegistry reg;
  gc::LimboList limbo;
  (void)reg.currentSlot();

  limbo.retire(new Tracked, &Tracked::deleter);
  limbo.retire(new Tracked, &Tracked::deleter);
  EXPECT_EQ(Tracked::liveCount.load(), 2);

  limbo.openEpoch(reg);
  EXPECT_EQ(limbo.tryCollect(reg), 2u);
  EXPECT_EQ(Tracked::liveCount.load(), 0);
}

TEST(LimboListTest, DoesNotCollectWhileOperationPending) {
  gc::ThreadRegistry reg;
  gc::LimboList limbo;
  auto& slot = reg.currentSlot();

  limbo.retire(new Tracked, &Tracked::deleter);
  slot.pending.store(true);
  limbo.openEpoch(reg);
  EXPECT_EQ(limbo.tryCollect(reg), 0u);
  EXPECT_EQ(Tracked::liveCount.load(), 1);

  slot.completed.fetch_add(1);
  slot.pending.store(false);
  EXPECT_EQ(limbo.tryCollect(reg), 1u);
  EXPECT_EQ(Tracked::liveCount.load(), 0);
}

TEST(LimboListTest, OnlyEpochPrefixIsCollected) {
  gc::ThreadRegistry reg;
  gc::LimboList limbo;
  (void)reg.currentSlot();

  limbo.retire(new Tracked, &Tracked::deleter);
  limbo.openEpoch(reg);
  limbo.retire(new Tracked, &Tracked::deleter);  // after the epoch snapshot

  EXPECT_EQ(limbo.tryCollect(reg), 1u);
  EXPECT_EQ(Tracked::liveCount.load(), 1);
  EXPECT_EQ(limbo.pending(), 1u);

  limbo.openEpoch(reg);
  EXPECT_EQ(limbo.tryCollect(reg), 1u);
  EXPECT_EQ(Tracked::liveCount.load(), 0);
}

TEST(LimboListTest, DestructorFreesEverything) {
  {
    gc::LimboList limbo;
    limbo.retire(new Tracked, &Tracked::deleter);
    limbo.retire(new Tracked, &Tracked::deleter);
  }
  EXPECT_EQ(Tracked::liveCount.load(), 0);
}

TEST(LimboListTest, CountersTrackRetireAndFree) {
  gc::ThreadRegistry reg;
  gc::LimboList limbo;
  (void)reg.currentSlot();
  for (int i = 0; i < 5; ++i) limbo.retire(new Tracked, &Tracked::deleter);
  limbo.openEpoch(reg);
  limbo.tryCollect(reg);
  EXPECT_EQ(limbo.retiredTotal(), 5u);
  EXPECT_EQ(limbo.freedTotal(), 5u);
  EXPECT_EQ(limbo.pending(), 0u);
}

// End-to-end shape: readers hold OpGuards while "traversing" retired nodes;
// the collector must never free a node while a guard that could reference it
// is open.
TEST(LimboListTest, StressReadersNeverSeeFreedMemory) {
  gc::ThreadRegistry reg;
  gc::LimboList limbo;

  struct Node {
    std::atomic<std::int64_t> value{42};
  };
  std::atomic<Node*> shared{new Node};
  std::atomic<bool> stop{false};
  std::atomic<int> badReads{0};

  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      gc::OpGuard g(reg);
      Node* n = shared.load(std::memory_order_acquire);
      // Between load and dereference the node may be retired but must not
      // be freed: the OpGuard keeps us in the epoch.
      if (n->value.load(std::memory_order_relaxed) != 42) {
        badReads.fetch_add(1);
      }
    }
  });

  for (int i = 0; i < 2000; ++i) {
    Node* fresh = new Node;
    Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
    limbo.retire(old, [](void* p) {
      auto* node = static_cast<Node*>(p);
      node->value.store(-1, std::memory_order_relaxed);  // poison
      delete node;
    });
    limbo.openEpoch(reg);
    while (limbo.tryCollect(reg) == 0) {
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  delete shared.load();
  EXPECT_EQ(badReads.load(), 0);
}

}  // namespace
