// Sequential semantics of every tree behind the map interface, checked
// against std::map as the reference implementation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "bench_core/rng.hpp"
#include "trees/map_interface.hpp"

namespace trees = sftree::trees;
using sftree::Key;
using sftree::bench::Rng;

namespace {

class TreeSequentialTest : public ::testing::TestWithParam<trees::MapKind> {
 protected:
  std::unique_ptr<trees::ITransactionalMap> makeMap() {
    return trees::makeMap(GetParam());
  }
};

TEST_P(TreeSequentialTest, EmptyMapBehaviour) {
  auto map = makeMap();
  EXPECT_FALSE(map->contains(1));
  EXPECT_FALSE(map->erase(1));
  EXPECT_EQ(map->get(1), std::nullopt);
  EXPECT_EQ(map->size(), 0u);
  EXPECT_TRUE(map->keysInOrder().empty());
}

TEST_P(TreeSequentialTest, InsertThenContains) {
  auto map = makeMap();
  EXPECT_TRUE(map->insert(5, 50));
  EXPECT_TRUE(map->contains(5));
  EXPECT_EQ(map->get(5), 50);
  EXPECT_FALSE(map->contains(4));
}

TEST_P(TreeSequentialTest, DuplicateInsertFails) {
  auto map = makeMap();
  EXPECT_TRUE(map->insert(5, 50));
  EXPECT_FALSE(map->insert(5, 51));
  // Set semantics: the original value is preserved on failed insert.
  EXPECT_EQ(map->get(5), 50);
}

TEST_P(TreeSequentialTest, EraseThenGone) {
  auto map = makeMap();
  EXPECT_TRUE(map->insert(5, 50));
  EXPECT_TRUE(map->erase(5));
  EXPECT_FALSE(map->contains(5));
  EXPECT_FALSE(map->erase(5));
  EXPECT_EQ(map->get(5), std::nullopt);
}

TEST_P(TreeSequentialTest, ReinsertAfterErase) {
  auto map = makeMap();
  EXPECT_TRUE(map->insert(5, 50));
  EXPECT_TRUE(map->erase(5));
  EXPECT_TRUE(map->insert(5, 55));
  EXPECT_EQ(map->get(5), 55);
}

TEST_P(TreeSequentialTest, KeysComeOutSorted) {
  auto map = makeMap();
  for (Key k : {7, 3, 9, 1, 5, 8, 2}) EXPECT_TRUE(map->insert(k, k));
  EXPECT_EQ(map->keysInOrder(), (std::vector<Key>{1, 2, 3, 5, 7, 8, 9}));
}

TEST_P(TreeSequentialTest, AscendingInsertionWorks) {
  auto map = makeMap();
  for (Key k = 0; k < 512; ++k) EXPECT_TRUE(map->insert(k, 2 * k));
  for (Key k = 0; k < 512; ++k) EXPECT_EQ(map->get(k), 2 * k);
  EXPECT_EQ(map->size(), 512u);
}

TEST_P(TreeSequentialTest, DescendingInsertionWorks) {
  auto map = makeMap();
  for (Key k = 511; k >= 0; --k) EXPECT_TRUE(map->insert(k, k));
  EXPECT_EQ(map->size(), 512u);
  EXPECT_TRUE(map->contains(0));
  EXPECT_TRUE(map->contains(511));
}

TEST_P(TreeSequentialTest, EraseEverythingInRandomOrder) {
  auto map = makeMap();
  std::vector<Key> keys;
  for (Key k = 0; k < 256; ++k) {
    keys.push_back(k);
    map->insert(k, k);
  }
  Rng rng(99);
  for (std::size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.nextBounded(i)]);
  }
  for (Key k : keys) EXPECT_TRUE(map->erase(k));
  EXPECT_EQ(map->size(), 0u);
  EXPECT_TRUE(map->keysInOrder().empty());
}

TEST_P(TreeSequentialTest, MoveRelocatesValue) {
  auto map = makeMap();
  map->insert(1, 100);
  EXPECT_TRUE(map->move(1, 2));
  EXPECT_FALSE(map->contains(1));
  EXPECT_EQ(map->get(2), 100);
}

TEST_P(TreeSequentialTest, MoveFailsWhenSourceMissing) {
  auto map = makeMap();
  EXPECT_FALSE(map->move(1, 2));
  EXPECT_FALSE(map->contains(2));
}

TEST_P(TreeSequentialTest, MoveFailsWhenDestinationOccupied) {
  auto map = makeMap();
  map->insert(1, 100);
  map->insert(2, 200);
  EXPECT_FALSE(map->move(1, 2));
  EXPECT_EQ(map->get(1), 100);
  EXPECT_EQ(map->get(2), 200);
}

TEST_P(TreeSequentialTest, MoveToSameKeyFails) {
  auto map = makeMap();
  map->insert(1, 100);
  // Destination == source is occupied by definition.
  EXPECT_FALSE(map->move(1, 1));
  EXPECT_EQ(map->get(1), 100);
}

TEST_P(TreeSequentialTest, RandomFuzzAgainstStdMap) {
  auto map = makeMap();
  std::map<Key, sftree::Value> reference;
  Rng rng(GetParam() == trees::MapKind::RBTree ? 1234 : 777);
  constexpr int kOps = 6000;
  constexpr Key kRange = 512;

  for (int i = 0; i < kOps; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(kRange));
    switch (rng.nextBounded(4)) {
      case 0: {  // insert
        const auto v = static_cast<sftree::Value>(rng.nextBounded(1 << 20));
        const bool expect = reference.emplace(k, v).second;
        ASSERT_EQ(map->insert(k, v), expect) << "insert " << k << " op " << i;
        break;
      }
      case 1: {  // erase
        const bool expect = reference.erase(k) > 0;
        ASSERT_EQ(map->erase(k), expect) << "erase " << k << " op " << i;
        break;
      }
      case 2: {  // contains
        const bool expect = reference.count(k) > 0;
        ASSERT_EQ(map->contains(k), expect) << "contains " << k << " op " << i;
        break;
      }
      default: {  // get
        const auto it = reference.find(k);
        const auto got = map->get(k);
        if (it == reference.end()) {
          ASSERT_EQ(got, std::nullopt) << "get " << k << " op " << i;
        } else {
          ASSERT_EQ(got, it->second) << "get " << k << " op " << i;
        }
        break;
      }
    }
  }
  // Final contents must agree exactly.
  map->quiesce();
  std::vector<Key> expectKeys;
  for (const auto& [k, v] : reference) expectKeys.push_back(k);
  EXPECT_EQ(map->keysInOrder(), expectKeys);
  EXPECT_EQ(map->size(), reference.size());
}

TEST_P(TreeSequentialTest, FuzzWithMoves) {
  auto map = makeMap();
  std::map<Key, sftree::Value> reference;
  Rng rng(31337);
  constexpr int kOps = 3000;
  constexpr Key kRange = 256;

  for (int i = 0; i < kOps; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(kRange));
    const Key k2 = static_cast<Key>(rng.nextBounded(kRange));
    switch (rng.nextBounded(3)) {
      case 0: {
        const bool expect = reference.emplace(k, k).second;
        ASSERT_EQ(map->insert(k, k), expect);
        break;
      }
      case 1: {
        const bool expect = reference.erase(k) > 0;
        ASSERT_EQ(map->erase(k), expect);
        break;
      }
      default: {
        const auto it = reference.find(k);
        bool expect = false;
        if (it != reference.end() && reference.count(k2) == 0) {
          const auto v = it->second;
          reference.erase(it);
          reference.emplace(k2, v);
          expect = true;
        }
        ASSERT_EQ(map->move(k, k2), expect) << "move " << k << "->" << k2;
        break;
      }
    }
  }
  map->quiesce();
  std::vector<Key> expectKeys;
  for (const auto& [k, v] : reference) expectKeys.push_back(k);
  EXPECT_EQ(map->keysInOrder(), expectKeys);
}

INSTANTIATE_TEST_SUITE_P(
    AllTrees, TreeSequentialTest,
    ::testing::ValuesIn(trees::allMapKinds()),
    [](const ::testing::TestParamInfo<trees::MapKind>& info) {
      std::string name = trees::mapKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
