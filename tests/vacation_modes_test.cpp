// Vacation under the other TM configurations (ETL, NOrec) and heavier
// concurrency: the database must stay consistent regardless of the TM
// algorithm — the application-level counterpart of the §5.3 portability
// claim.
#include <gtest/gtest.h>

#include <string>

#include "vacation/vacation_app.hpp"

namespace vac = sftree::vacation;
namespace trees = sftree::trees;
namespace stm = sftree::stm;

namespace {

struct ModeCase {
  stm::LockMode lockMode;
  stm::TmBackend backend;
  trees::MapKind tables;
  const char* name;
};

class VacationModesTest : public ::testing::TestWithParam<ModeCase> {
 protected:
  void SetUp() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = GetParam().lockMode;
    cfg.backend = GetParam().backend;
    stm::defaultDomain().setConfig(cfg);
  }
  void TearDown() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = stm::LockMode::Lazy;
    cfg.backend = stm::TmBackend::Orec;
    stm::defaultDomain().setConfig(cfg);
  }
};

TEST_P(VacationModesTest, HighContentionRunStaysConsistent) {
  vac::VacationConfig cfg;
  cfg.client = vac::highContentionConfig();
  cfg.client.relations = 192;
  cfg.tableKind = GetParam().tables;
  cfg.threads = 4;
  cfg.transactions = 1600;
  const auto result = vac::runVacation(cfg);
  EXPECT_TRUE(result.consistent) << result.consistencyError;
  EXPECT_GT(result.stm.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, VacationModesTest,
    ::testing::Values(
        ModeCase{stm::LockMode::Eager, stm::TmBackend::Orec,
                 trees::MapKind::OptSFTree, "etl_optsf"},
        ModeCase{stm::LockMode::Eager, stm::TmBackend::Orec,
                 trees::MapKind::RBTree, "etl_rb"},
        ModeCase{stm::LockMode::Lazy, stm::TmBackend::NOrec,
                 trees::MapKind::OptSFTree, "norec_optsf"},
        ModeCase{stm::LockMode::Lazy, stm::TmBackend::NOrec,
                 trees::MapKind::RBTree, "norec_rb"},
        ModeCase{stm::LockMode::Lazy, stm::TmBackend::NOrec,
                 trees::MapKind::AVLTree, "norec_avl"},
        ModeCase{stm::LockMode::Eager, stm::TmBackend::Orec,
                 trees::MapKind::NRTree, "etl_nr"}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
