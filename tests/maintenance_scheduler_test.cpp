// Shared maintenance scheduler: N trees multiplexed onto K worker threads.
// Covers quiescing real trees through the pool, register/unregister under
// races, pause semantics, backoff/work-signal accounting and stats
// consistency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "shard/maintenance_scheduler.hpp"
#include "trees/sftree.hpp"
#include "trees/tree_checks.hpp"

namespace shard = sftree::shard;
namespace trees = sftree::trees;
using sftree::Key;

namespace {

trees::SFTreeConfig externallyMaintained() {
  trees::SFTreeConfig cfg;
  cfg.startMaintenance = false;
  return cfg;
}

void waitFor(const std::function<bool()>& cond, int timeoutMs = 10'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeoutMs);
  while (!cond()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "condition not reached before timeout";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// N trees x K workers (K < N): sequential fills degenerate every tree into
// a list; the shared pool must restructure all of them to logarithmic
// height without any dedicated per-tree thread.
TEST(MaintenanceSchedulerTest, FewWorkersQuiesceManyTrees) {
  constexpr int kTrees = 4;
  constexpr Key kKeys = 512;

  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 2;
  shard::MaintenanceScheduler scheduler(cfg);

  std::vector<std::unique_ptr<trees::SFTree>> forest;
  std::vector<shard::MaintenanceScheduler::TreeHandle> handles;
  for (int i = 0; i < kTrees; ++i) {
    forest.push_back(
        std::make_unique<trees::SFTree>(externallyMaintained()));
    trees::SFTree* tree = forest.back().get();
    handles.push_back(scheduler.registerTree(
        "tree" + std::to_string(i),
        [tree](const std::atomic<bool>* cancel) {
          return tree->runMaintenancePass(cancel);
        },
        [tree] { return tree->updateTicks(); }));
  }
  ASSERT_EQ(scheduler.registeredCount(), static_cast<std::size_t>(kTrees));

  // Ascending inserts: without restructuring each tree is a 512-long list.
  for (auto& tree : forest) {
    for (Key k = 0; k < kKeys; ++k) tree->insert(k, k);
  }

  // The scheduler (not the caller) must bring every tree near log height.
  // height() is a quiesced-only walk, so pause the tree's entry around
  // each probe (in-flight passes drain before pause() returns).
  for (int i = 0; i < kTrees; ++i) {
    trees::SFTree* t = forest[i].get();
    const auto h = handles[i];
    waitFor([&scheduler, t, h] {
      scheduler.pause(h);
      const int height = t->height();
      scheduler.resume(h);
      return height <= 18;  // ~2 * log2(512)
    });
  }

  // Pause scheduling per tree, then verify invariants on a quiesced tree.
  for (int i = 0; i < kTrees; ++i) {
    scheduler.pause(handles[i]);
    auto res = trees::checkSFTree(*forest[i]);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(forest[i]->abstractSize(), static_cast<std::size_t>(kKeys));
    scheduler.resume(handles[i]);
  }

  const auto stats = scheduler.stats();
  EXPECT_GT(stats.passes, 0u);
  EXPECT_GT(stats.activePasses, 0u);
  EXPECT_LE(stats.activePasses, stats.passes);

  for (const auto h : handles) scheduler.unregisterTree(h);
  EXPECT_EQ(scheduler.registeredCount(), 0u);
}

// unregisterTree must block until any in-flight pass on that tree is done:
// after it returns, destroying the tree is safe even while other trees keep
// being maintained.
TEST(MaintenanceSchedulerTest, UnregisterRacesWithRunningPasses) {
  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 2;
  cfg.hotPause = std::chrono::microseconds(0);
  shard::MaintenanceScheduler scheduler(cfg);

  constexpr int kRounds = 40;
  std::atomic<int> inPass{0};
  std::atomic<bool> sawOverlapAfterUnregister{false};

  for (int round = 0; round < kRounds; ++round) {
    auto alive = std::make_shared<std::atomic<bool>>(true);
    const auto h = scheduler.registerTree(
        "victim",
        [alive, &inPass, &sawOverlapAfterUnregister](
            const std::atomic<bool>*) {
          inPass.fetch_add(1);
          if (!alive->load()) sawOverlapAfterUnregister.store(true);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          inPass.fetch_sub(1);
          return true;  // always "hot" so the pool re-runs it constantly
        });
    // Let the workers pick it up, then unregister mid-flight.
    std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 5)));
    scheduler.unregisterTree(h);
    alive->store(false);  // from here on, a running pass would be a bug
  }
  EXPECT_FALSE(sawOverlapAfterUnregister.load());
  EXPECT_EQ(scheduler.registeredCount(), 0u);
}

// Concurrent register/unregister from several threads while the pool runs:
// no crashes, no lost entries, all handles still valid to unregister.
TEST(MaintenanceSchedulerTest, ConcurrentRegistrationChurn) {
  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 2;
  shard::MaintenanceScheduler scheduler(cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<std::uint64_t> totalPasses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto h = scheduler.registerTree(
            "churn", [&totalPasses](const std::atomic<bool>*) {
              totalPasses.fetch_add(1);
              return false;  // idle: exercises the backoff path too
            });
        std::this_thread::sleep_for(std::chrono::microseconds(i % 7));
        scheduler.unregisterTree(h);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(scheduler.registeredCount(), 0u);
  // Stats survive unregistration (global counters, not per-entry).
  EXPECT_EQ(scheduler.stats().passes, totalPasses.load());
}

// Idle trees back off exponentially; a hot tree keeps receiving passes. The
// work-signal callback must cut a backed-off tree's wait short.
TEST(MaintenanceSchedulerTest, BackoffSkipsIdleTreesAndSignalRevives) {
  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 1;
  cfg.basePause = std::chrono::microseconds(200);
  cfg.maxPause = std::chrono::milliseconds(50);
  shard::MaintenanceScheduler scheduler(cfg);

  std::atomic<std::uint64_t> idlePasses{0};
  std::atomic<std::uint64_t> hotPasses{0};
  std::atomic<std::uint64_t> signal{0};

  const auto idleH = scheduler.registerTree(
      "idle",
      [&idlePasses](const std::atomic<bool>*) {
        idlePasses.fetch_add(1);
        return false;
      },
      [&signal] { return signal.load(); });
  const auto hotH = scheduler.registerTree(
      "hot", [&hotPasses](const std::atomic<bool>*) {
        hotPasses.fetch_add(1);
        // Tiny sleep so the single worker is not 100% busy on this entry.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        return true;
      });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const auto idleBefore = idlePasses.load();
  const auto hotBefore = hotPasses.load();
  EXPECT_GT(hotBefore, idleBefore * 4)
      << "hot tree should receive far more passes than a backed-off one";

  // A work signal on the idle tree must revive it promptly.
  signal.fetch_add(1);
  waitFor([&] { return idlePasses.load() > idleBefore; }, 2'000);

  const auto stats = scheduler.stats();
  EXPECT_GT(stats.backoffSkips, 0u);

  // Per-tree stats line up with the callbacks' own counts.
  for (const auto& t : scheduler.treeStats()) {
    if (t.name == "idle") {
      EXPECT_EQ(t.passes, idlePasses.load());
      EXPECT_EQ(t.activePasses, 0u);
      EXPECT_GT(t.idleStreak, 0);
    } else {
      EXPECT_EQ(t.name, "hot");
      EXPECT_EQ(t.passes, t.activePasses);
    }
  }

  scheduler.unregisterTree(idleH);
  scheduler.unregisterTree(hotH);
}

// pause() excludes a tree from scheduling (and waits out an in-flight
// pass); resume() brings it back.
TEST(MaintenanceSchedulerTest, PauseStopsSchedulingUntilResume) {
  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 2;
  shard::MaintenanceScheduler scheduler(cfg);

  std::atomic<std::uint64_t> passes{0};
  const auto h = scheduler.registerTree(
      "pausable", [&passes](const std::atomic<bool>*) {
        passes.fetch_add(1);
        return true;  // hot, so scheduling gaps are visible
      });
  waitFor([&] { return passes.load() > 0; });

  scheduler.pause(h);
  const auto frozen = passes.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(passes.load(), frozen) << "paused tree must receive no passes";

  scheduler.resume(h);
  waitFor([&] { return passes.load() > frozen; });

  // Pauses nest: two concurrent pausers (e.g. two threads doing quiesced
  // walks) must both resume before scheduling restarts.
  scheduler.pause(h);
  scheduler.pause(h);
  scheduler.resume(h);  // one pauser done, the other still active
  const auto stillFrozen = passes.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(passes.load(), stillFrozen)
      << "resume by one pauser must not unpause the other";
  scheduler.resume(h);

  waitFor([&] { return passes.load() > stillFrozen; });
  scheduler.unregisterTree(h);
}

// Destroying the scheduler with registered entries must stop cleanly and
// hand the cancel flag to in-flight passes.
TEST(MaintenanceSchedulerTest, ShutdownCancelsInFlightPass) {
  std::atomic<bool> sawCancel{false};
  {
    shard::MaintenanceSchedulerConfig cfg;
    cfg.workers = 1;
    shard::MaintenanceScheduler scheduler(cfg);
    scheduler.registerTree("slow", [&sawCancel](
                                       const std::atomic<bool>* cancel) {
      // Simulate a long pass over a huge tree: poll the cancel flag the way
      // SFTree::maintainSubtree does.
      for (int i = 0; i < 100'000; ++i) {
        if (cancel != nullptr && cancel->load()) {
          sawCancel.store(true);
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(10));
      }
      return false;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    // Destructor runs here while the pass is mid-flight.
  }
  EXPECT_TRUE(sawCancel.load());
}

// Load-driven priority: among simultaneously eligible trees, the worker
// must pick the one reporting the highest pending load (the violation-queue
// depth in production) ahead of its round-robin position.
TEST(MaintenanceSchedulerTest, LoadSteersWorkersToTheHottestTree) {
  shard::MaintenanceSchedulerConfig cfg;
  cfg.workers = 1;
  cfg.basePause = std::chrono::milliseconds(50);  // signals drive eligibility
  shard::MaintenanceScheduler scheduler(cfg);

  std::atomic<std::uint64_t> coldPasses{0};
  std::atomic<std::uint64_t> hotPasses{0};
  // Ever-changing signals keep both entries eligible at every scan, so each
  // pick is a genuine load comparison.
  std::atomic<std::uint64_t> tick{0};
  const auto cold = scheduler.registerTree(
      "cold",
      [&](const std::atomic<bool>*) {
        coldPasses.fetch_add(1);
        return false;
      },
      [&] { return tick.fetch_add(1); });
  const auto hot = scheduler.registerTree(
      "hot",
      [&](const std::atomic<bool>*) {
        hotPasses.fetch_add(1);
        return false;
      },
      [&] { return tick.fetch_add(1); }, [] { return std::uint64_t{64}; });

  waitFor([&] { return hotPasses.load() >= 20; });
  // The hot tree is scanned after the cold one whenever the rotation starts
  // at "cold", so every such pick must have been a load override.
  waitFor([&] { return scheduler.stats().priorityPicks > 0; });
  // Anti-starvation: the hot tree stays eligible forever (its signal keeps
  // changing), yet the overtake cap must still force the cold tree through.
  waitFor([&] { return coldPasses.load() > 0; });
  const auto trees = scheduler.treeStats();
  for (const auto& t : trees) {
    if (t.name == "hot") EXPECT_EQ(t.lastLoad, 64u);
    if (t.name == "cold") EXPECT_EQ(t.lastLoad, 0u);
  }
  scheduler.unregisterTree(hot);
  scheduler.unregisterTree(cold);
}

}  // namespace
