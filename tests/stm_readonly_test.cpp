// Read-only transaction mode (TxKind::ReadOnly) semantics.
//
//   * zero-logging RO commits are counted and behave like normal read-only
//     transactions (same values, snapshot consistency);
//   * a write inside an RO transaction transparently promotes the attempt
//     to read-write mode and the operation stays atomic;
//   * RO snapshot isolation holds under concurrent writers on both the orec
//     and the NOrec backend, in fresh domains and across two domains;
//   * the tree read operations ride the RO path end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "trees/map_interface.hpp"

namespace stm = sftree::stm;
namespace trees = sftree::trees;

namespace {

stm::ThreadStats domainStatsSnapshot(stm::Domain& d) {
  return d.aggregateStats();
}

TEST(ReadOnlyTxTest, RoCommitIsCountedAndReturnsCommittedValues) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(11);
  stm::TxField<std::int64_t> y(31);
  stm::atomically(dom, [&](stm::Tx& tx) {
    x.write(tx, 1);
    y.write(tx, 2);
  });
  const auto before = domainStatsSnapshot(dom);
  const auto sum =
      stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
        EXPECT_TRUE(tx.readOnlyMode());
        return x.read(tx) + y.read(tx);
      });
  EXPECT_EQ(sum, 3);
  const auto after = domainStatsSnapshot(dom);
  EXPECT_EQ(after.roCommits, before.roCommits + 1);
  EXPECT_EQ(after.commits, before.commits + 1);
  EXPECT_EQ(after.aborts, before.aborts);
}

TEST(ReadOnlyTxTest, WriteInsideRoPromotesAndStaysAtomic) {
  stm::Domain dom;
  stm::TxField<std::int64_t> x(5);
  stm::TxField<std::int64_t> y(5);
  const auto before = domainStatsSnapshot(dom);
  int bodyRuns = 0;
  stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
    ++bodyRuns;
    const auto v = x.read(tx);
    // First execution runs in RO mode; the write below restarts the body
    // in read-write mode, where both writes commit atomically.
    x.write(tx, v + 1);
    y.write(tx, v + 1);
    EXPECT_FALSE(tx.readOnlyMode());
  });
  EXPECT_GE(bodyRuns, 2);  // RO attempt + promoted read-write attempt
  EXPECT_EQ(x.loadRelaxed(), 6);
  EXPECT_EQ(y.loadRelaxed(), 6);
  const auto after = domainStatsSnapshot(dom);
  EXPECT_EQ(after.roPromotions, before.roPromotions + 1);
  EXPECT_EQ(after.roCommits, before.roCommits);  // committed as read-write
  EXPECT_EQ(after.commits, before.commits + 1);
  // The promotion restart is not a conflict abort — it lands in the
  // taxonomy's restart band (ro_promotion) and stays out of the conflict
  // partition, which must still sum to the legacy counter exactly.
  EXPECT_EQ(after.aborts, before.aborts);
  EXPECT_EQ(after.abortsFor(sftree::obs::AbortCause::kRoPromotion),
            before.abortsFor(sftree::obs::AbortCause::kRoPromotion) + 1);
  EXPECT_EQ(after.conflictAbortTotal(), after.aborts);

  // The next ReadOnly operation starts in RO mode again (the promotion is
  // scoped to one operation).
  stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
    EXPECT_TRUE(tx.readOnlyMode());
    return x.read(tx);
  });
}

// Two fields must always be observed equal: the writer increments both in
// one transaction; RO readers must never see a half-applied update.
void runSnapshotIsolation(stm::Domain& dom) {
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread writer([&] {
    for (int i = 1; i <= 20000 && !stop.load(); ++i) {
      stm::atomically(dom, [&](stm::Tx& tx) {
        a.write(tx, i);
        b.write(tx, i);
      });
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      // Keep reading for a minimum number of snapshots even after the
      // writer finishes (on one core the writer can run to completion
      // before the readers are scheduled at all).
      for (int i = 0; i < 500 || !stop.load(std::memory_order_relaxed);
           ++i) {
        const auto pair =
            stm::atomically(dom, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
              return std::pair<std::int64_t, std::int64_t>{a.read(tx),
                                                           b.read(tx)};
            });
        if (pair.first != pair.second) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(violations.load(), 0u);
  const auto stats = domainStatsSnapshot(dom);
  EXPECT_GT(stats.roCommits, 0u);
}

TEST(ReadOnlyTxTest, SnapshotIsolationUnderWritersOrecLazy) {
  stm::Domain dom;  // default: orec backend, lazy acquirement
  runSnapshotIsolation(dom);
}

TEST(ReadOnlyTxTest, SnapshotIsolationUnderWritersOrecEager) {
  stm::Config cfg;
  cfg.lockMode = stm::LockMode::Eager;
  stm::Domain dom(cfg);
  runSnapshotIsolation(dom);
}

TEST(ReadOnlyTxTest, SnapshotIsolationUnderWritersNOrec) {
  stm::Config cfg;
  cfg.backend = stm::TmBackend::NOrec;
  stm::Domain dom(cfg);
  runSnapshotIsolation(dom);
}

// Cross-domain RO: a writer moves value between two domains atomically
// (multi-domain commit); an RO reader joining both domains must always see
// the sum conserved.
TEST(ReadOnlyTxTest, CrossDomainSnapshotIsolation) {
  stm::Domain domA;
  stm::Domain domB;
  stm::TxField<std::int64_t> a(1000);
  stm::TxField<std::int64_t> b(0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};

  std::thread writer([&] {
    for (int i = 0; i < 10000; ++i) {
      stm::atomically(domA, [&](stm::Tx& tx) {
        stm::DomainScope sa(tx, domA);
        const auto va = a.read(tx);
        a.write(tx, va - 1);
        stm::DomainScope sb(tx, domB);
        b.write(tx, b.read(tx) + 1);
      });
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto sum =
          stm::atomically(domA, stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
            std::int64_t s = 0;
            {
              stm::DomainScope sa(tx, domA);
              s += a.read(tx);
            }
            {
              stm::DomainScope sb(tx, domB);
              s += b.read(tx);
            }
            return s;
          });
      if (sum != 1000) violations.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(a.loadRelaxed() + b.loadRelaxed(), 1000);
}

// End-to-end: tree contains/get/countRange ride the RO path, and the
// snapshot stays consistent under concurrent tree updates.
TEST(ReadOnlyTxTest, TreeReadsUseRoPathAndStayConsistent) {
  for (const auto kind :
       {trees::MapKind::SFTree, trees::MapKind::OptSFTree,
        trees::MapKind::RBTree, trees::MapKind::AVLTree}) {
    SCOPED_TRACE(trees::mapKindName(kind));
    stm::Domain dom;
    trees::MapOptions opts;
    opts.domain = &dom;
    auto map = trees::makeMap(kind, stm::TxKind::Normal, opts);
    for (sftree::Key k = 0; k < 512; ++k) map->insert(k, k);

    const auto before = dom.aggregateStats();
    EXPECT_TRUE(map->contains(17));
    EXPECT_EQ(map->get(17), std::optional<sftree::Value>(17));
    EXPECT_EQ(map->countRange(0, 511), 512u);
    const auto after = dom.aggregateStats();
    EXPECT_GE(after.roCommits, before.roCommits + 3);

    // The writer keeps the number of present keys invariant (insert one,
    // erase one per transactionally-composed move); countRange snapshots
    // must always see the invariant count.
    std::atomic<bool> stop{false};
    std::thread writer([&] {
      for (int i = 0; i < 2000; ++i) {
        map->move(i % 512, 1000 + (i % 512));
        map->move(1000 + (i % 512), i % 512);
      }
      stop.store(true);
    });
    std::uint64_t checks = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_EQ(map->countRange(0, 2000), 512u);
      ++checks;
    }
    writer.join();
    EXPECT_GT(checks, 0u);
    EXPECT_EQ(map->countRange(0, 2000), 512u);
  }
}

}  // namespace
