// Elastic transaction semantics (E-STM equivalent): hand-over-hand windows,
// cuts on traversal, fallback to normal behaviour after the first write.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stm/stm.hpp"

namespace stm = sftree::stm;

namespace {

class StmElasticTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stm::defaultDomain().setLockMode(stm::LockMode::Lazy);
  }
};

// A rendezvous helper: lets the test thread run a foreign mutation exactly
// once at a chosen point inside another thread's transaction attempt.
class OneShot {
 public:
  void fire() {
    std::lock_guard<std::mutex> lk(mu_);
    fired_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return fired_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool fired_ = false;
};

TEST_F(StmElasticTest, ElasticReadOnlyCommits) {
  stm::TxField<std::int64_t> x(5);
  const auto v = stm::atomically(stm::TxKind::Elastic,
                                 [&](stm::Tx& tx) { return x.read(tx); });
  EXPECT_EQ(v, 5);
}

TEST_F(StmElasticTest, ElasticWriteCommits) {
  stm::TxField<std::int64_t> x(5);
  stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
    x.write(tx, x.read(tx) + 1);
  });
  EXPECT_EQ(x.loadRelaxed(), 6);
}

// The defining elastic behaviour: a traversal's *old* reads may be
// invalidated by concurrent commits without aborting the traversal, because
// the window has slid past them (they were "cut").
TEST_F(StmElasticTest, OldReadsMayBeOverwrittenWithoutAbort) {
  constexpr int kFields = 16;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (int i = 0; i < kFields; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }

  OneShot firstReadsDone;
  OneShot mutationDone;
  std::atomic<int> attempts{0};

  std::thread traverser([&] {
    stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      std::int64_t sum = 0;
      // Read the first few fields, then let the mutator overwrite field 0
      // (already outside the window by then), then keep traversing.
      for (int i = 0; i < 4; ++i) sum += fields[i]->read(tx);
      if (attempt == 1) {
        firstReadsDone.fire();
        mutationDone.wait();
      }
      for (int i = 4; i < kFields; ++i) sum += fields[i]->read(tx);
      return sum;
    });
  });

  firstReadsDone.wait();
  stm::atomically([&](stm::Tx& tx) { fields[0]->write(tx, 1000); });
  mutationDone.fire();
  traverser.join();

  // The elastic traversal must have committed on the first attempt even
  // though its very first read became stale.
  EXPECT_EQ(attempts.load(), 1);
}

// Control experiment: a *normal* transaction in the identical interleaving
// must abort at least once (the stale read is still in its read set).
TEST_F(StmElasticTest, NormalTransactionAbortsInSameScenario) {
  constexpr int kFields = 16;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (int i = 0; i < kFields; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }

  OneShot firstReadsDone;
  OneShot mutationDone;
  std::atomic<int> attempts{0};

  std::thread traverser([&] {
    stm::atomically([&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      std::int64_t sum = 0;
      for (int i = 0; i < 4; ++i) sum += fields[i]->read(tx);
      if (attempt == 1) {
        firstReadsDone.fire();
        mutationDone.wait();
      }
      for (int i = 4; i < kFields; ++i) sum += fields[i]->read(tx);
      // Force a commit-time validation by writing something.
      fields[kFields - 1]->write(tx, sum);
      return sum;
    });
  });

  firstReadsDone.wait();
  stm::atomically([&](stm::Tx& tx) { fields[0]->write(tx, 1000); });
  mutationDone.fire();
  traverser.join();

  EXPECT_GE(attempts.load(), 2);
}

// A mutation of the *most recent* read must still abort the elastic
// transaction: the window keeps hand-over-hand consistency.
TEST_F(StmElasticTest, RecentReadInvalidationAborts) {
  stm::TxField<std::int64_t> a(1);
  stm::TxField<std::int64_t> b(2);

  OneShot readDone;
  OneShot mutationDone;
  std::atomic<int> attempts{0};

  std::thread traverser([&] {
    stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      const auto va = a.read(tx);  // stays in the 2-entry window
      if (attempt == 1) {
        readDone.fire();
        mutationDone.wait();
      }
      const auto vb = b.read(tx);  // validates the window -> must abort
      return va + vb;
    });
  });

  readDone.wait();
  stm::atomically([&](stm::Tx& tx) { a.write(tx, 100); });
  mutationDone.fire();
  traverser.join();

  EXPECT_GE(attempts.load(), 2);
}

// After the first write the elastic transaction is normal: the reads still
// in its window at write time must remain valid through commit.
TEST_F(StmElasticTest, WindowBecomesStickyAfterWrite) {
  stm::TxField<std::int64_t> a(1);
  stm::TxField<std::int64_t> target(0);

  OneShot writeDone;
  OneShot mutationDone;
  std::atomic<int> attempts{0};

  std::thread updater([&] {
    stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      const auto va = a.read(tx);
      target.write(tx, va);  // folds the window into the read set
      if (attempt == 1) {
        writeDone.fire();
        mutationDone.wait();
      }
    });
  });

  writeDone.wait();
  stm::atomically([&](stm::Tx& tx) { a.write(tx, 55); });
  mutationDone.fire();
  updater.join();

  EXPECT_GE(attempts.load(), 2);
  // The retry read the new value.
  EXPECT_EQ(target.loadRelaxed(), 55);
}

TEST_F(StmElasticTest, ElasticCutsAreCounted) {
  stm::defaultDomain().resetStats();
  constexpr int kFields = 10;
  std::vector<std::unique_ptr<stm::TxField<std::int64_t>>> fields;
  for (int i = 0; i < kFields; ++i) {
    fields.push_back(std::make_unique<stm::TxField<std::int64_t>>(i));
  }
  stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
    std::int64_t sum = 0;
    for (auto& f : fields) sum += f->read(tx);
    return sum;
  });
  // With a window of 2, reading 10 fields slides the window 8 times.
  EXPECT_EQ(stm::threadStats().elasticCuts, 8u);
}

TEST_F(StmElasticTest, ElasticStressKeepsInvariant) {
  // Writers shift value between cells; elastic traversals verify that the
  // values of *adjacent* cells (inside one window) are consistent pairs.
  // We encode the pair-consistency as both cells updated in one tx.
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 20000; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        a.write(tx, i);
        b.write(tx, i);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto [x, y] =
          stm::atomically(stm::TxKind::Elastic, [&](stm::Tx& tx) {
            const auto va = a.read(tx);
            const auto vb = b.read(tx);  // window holds both reads
            return std::pair{va, vb};
          });
      if (x != y) mismatches.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
