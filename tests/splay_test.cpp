// Access-frequency splaying (docs/splaying.md): deterministic convergence
// of hot keys toward the root, strict no-op behavior with the policy off,
// and the mutator-churn vs splay-promotion race (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "trees/sftree.hpp"
#include "trees/tree_checks.hpp"
#include "trees/violation_queue.hpp"

namespace trees = sftree::trees;
using sftree::Key;

namespace {

// Deterministic splay configuration: no maintenance thread (tests drive
// passes themselves), every lookup hit publishes a tick (sampleShift 0),
// and an hour-long decay half-life so wall-clock jitter cannot cool the
// hot set mid-test.
trees::SFTreeConfig splayCfg(trees::SplayPolicy policy) {
  trees::SFTreeConfig cfg;
  cfg.ops = trees::OpsVariant::Optimized;
  cfg.startMaintenance = false;
  cfg.splay = policy;
  if (policy != trees::SplayPolicy::Off) {
    trees::SplayParams p;
    p.sampleShift = 0;
    p.minHeat = 4;
    p.promoteNum = 2;
    p.promoteDen = 1;
    p.minDepth = 1;
    p.slack = 32;
    p.rotationBudget = 256;
    p.decayHalfLifeNs = 3'600'000'000'000ULL;  // 1 h: no decay in-test
    cfg.splayParamsOverride = p;
  }
  return cfg;
}

int drainToFixpoint(trees::SFTree& tree, int maxPasses = 10'000) {
  for (int pass = 1; pass <= maxPasses; ++pass) {
    const bool didWork = tree.runMaintenancePass();
    if (!didWork && tree.violationQueueDepth() == 0) return pass;
  }
  ADD_FAILURE() << "maintenance did not reach a fixpoint";
  return maxPasses;
}

// Root-path length a lookup for k traverses (quiesced tree).
int depthOf(trees::SFTree& tree, Key k) {
  const trees::SFNode* n = tree.rootForTest()->left.loadRelaxed();
  int d = 1;
  while (n != nullptr && n->key != k) {
    n = (k < n->key) ? n->left.loadRelaxed() : n->right.loadRelaxed();
    ++d;
  }
  return d;
}

}  // namespace

// Hot keys must converge measurably shallower than they started while the
// tree stays a valid BST with the exact same key set — under churn, so the
// promotions race logically-deleted nodes and physical removals through the
// same queue drain.
TEST(SplayTest, HotKeysConvergeShallowerUnderChurn) {
  trees::SFTree tree(splayCfg(trees::SplayPolicy::Aggressive));
  constexpr Key kRange = 4096;
  std::mt19937_64 rng(17);
  std::set<Key> expect;
  for (int i = 0; i < 4096; ++i) {
    const Key k = static_cast<Key>(rng() % kRange);
    if (tree.insert(k, k)) expect.insert(k);
  }
  drainToFixpoint(tree);

  // A scattered hot set, measured before any access traffic.
  const std::vector<Key> hot = {3, 907, 1511, 2203, 3671};
  int beforeSum = 0;
  for (const Key k : hot) {
    ASSERT_TRUE(expect.count(k) != 0 || tree.insert(k, k));
    expect.insert(k);
    beforeSum += depthOf(tree, k);
  }

  // Interleave concentrated lookups with cold-key churn and drains, the
  // way a real workload feeds the queue a mix of kinds.
  for (int round = 0; round < 40; ++round) {
    for (const Key k : hot) {
      for (int i = 0; i < 8; ++i) ASSERT_TRUE(tree.contains(k));
    }
    for (int i = 0; i < 32; ++i) {
      const Key k = static_cast<Key>(rng() % kRange);
      if (std::find(hot.begin(), hot.end(), k) != hot.end()) continue;
      if ((rng() & 1) != 0) {
        if (tree.insert(k, k)) expect.insert(k);
      } else {
        if (tree.erase(k)) expect.erase(k);
      }
    }
    tree.runMaintenancePass();
  }
  drainToFixpoint(tree);

  const auto ms = tree.maintenanceStats();
  EXPECT_GT(ms.splaySteps, 0u);
  EXPECT_GT(ms.accessTicksConsumed, 0u);

  int afterSum = 0;
  int afterMax = 0;
  for (const Key k : hot) {
    const int d = depthOf(tree, k);
    afterSum += d;
    afterMax = std::max(afterMax, d);
  }
  // The whole hot set ends in the near-root region: strictly shallower in
  // aggregate, and no member deeper than a small constant — far above the
  // ~log2(4096) ≈ 12 levels a balanced placement would give it.
  EXPECT_LT(afterSum, beforeSum);
  EXPECT_LE(afterMax, 8) << "hot keys did not converge toward the root";

  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  const auto keys = tree.keysInOrder();
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), expect.begin(),
                         expect.end()))
      << "key set changed under splaying";
}

// SplayPolicy::Off must be a strict no-op: lookups publish nothing, drains
// consume nothing, and the splay counters stay zero — the read path of a
// policy-off tree is byte-for-byte the pre-splay read path.
TEST(SplayTest, PolicyOffPublishesAndPromotesNothing) {
  trees::SFTree tree(splayCfg(trees::SplayPolicy::Off));
  for (Key k = 0; k < 512; ++k) tree.insert(k, k);
  drainToFixpoint(tree);
  const auto before = tree.maintenanceStats();

  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i) EXPECT_TRUE(tree.contains(7));
  }
  EXPECT_EQ(tree.violationQueueDepth(), 0u);
  tree.runMaintenancePass();

  const auto after = tree.maintenanceStats();
  EXPECT_EQ(after.queue.captured, before.queue.captured);
  EXPECT_EQ(after.queue.absorbedTicks, 0u);
  EXPECT_EQ(after.accessEntriesDrained, 0u);
  EXPECT_EQ(after.accessTicksConsumed, 0u);
  EXPECT_EQ(after.splaySteps, 0u);
  EXPECT_EQ(after.splayZigZigs, 0u);
  EXPECT_EQ(after.rebalanceSkippedHot, 0u);
  EXPECT_EQ(after.rotations, before.rotations);
}

// Mutator churn racing splay promotions through the dedicated maintenance
// thread (the TSan configuration in CI): reader threads hammer a hot set
// while writers churn the same key range, and the tree must quiesce to a
// valid BST whose abstraction matches the committed net effect.
TEST(SplayTest, ChurnVsSplayRaceKeepsInvariants) {
  trees::SFTreeConfig cfg = splayCfg(trees::SplayPolicy::Aggressive);
  cfg.txKind = sftree::stm::TxKind::Elastic;  // spiciest update mode
  cfg.startMaintenance = true;  // dedicated thread races the mutators
  trees::SFTree tree(cfg);

  constexpr Key kRange = 2048;
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  std::atomic<std::int64_t> net{0};
  for (Key k = 0; k < kRange; k += 2) {
    if (tree.insert(k, k)) net.fetch_add(1);
  }

  std::barrier sync(kWriters + kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(131 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 3000; ++i) {
        const Key k = static_cast<Key>(rng() % kRange);
        if ((rng() & 1) != 0) {
          if (tree.insert(k, k)) net.fetch_add(1);
        } else {
          if (tree.erase(k)) net.fetch_sub(1);
        }
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(977 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 6000; ++i) {
        // Zipf-ish: half the lookups hit an 8-key hot set, so promotions
        // run continuously while the writers churn the same region.
        const Key k = (i & 1) != 0 ? static_cast<Key>((rng() % 8) * 255)
                                   : static_cast<Key>(rng() % kRange);
        (void)tree.contains(k);
      }
    });
  }
  for (auto& th : threads) th.join();

  tree.stopMaintenance();
  tree.quiesceNow();
  const auto check = trees::checkSFTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(tree.abstractSize(), static_cast<std::size_t>(net.load()));
  EXPECT_EQ(tree.violationQueueDepth(), 0u);
  const auto keys = tree.keysInOrder();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end())
      << "duplicate key in the abstraction";
}
