// NOrec-backend-specific semantics: the global sequence lock, value-based
// validation (ABA tolerance — the observable difference from the orec
// backend), and interaction with unit loads and hooks.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "stm/stm.hpp"

namespace stm = sftree::stm;

namespace {

class StmNorecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cfg = stm::defaultDomain().config();
    cfg.backend = stm::TmBackend::NOrec;
    stm::defaultDomain().setConfig(cfg);
  }
  void TearDown() override {
    auto cfg = stm::defaultDomain().config();
    cfg.backend = stm::TmBackend::Orec;
    stm::defaultDomain().setConfig(cfg);
  }
};

class OneShot {
 public:
  void fire() {
    std::lock_guard<std::mutex> lk(mu_);
    fired_ = true;
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return fired_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool fired_ = false;
};

TEST_F(StmNorecTest, SequenceLockAdvancesByTwoPerWriterCommit) {
  auto& seq = stm::defaultDomain().norecSeq();
  stm::TxField<std::int64_t> x(0);
  const auto before = seq.load();
  stm::atomically([&](stm::Tx& tx) { x.write(tx, 1); });
  const auto after = seq.load();
  EXPECT_EQ(after, before + 2);
  EXPECT_EQ(after % 2, 0u);
}

TEST_F(StmNorecTest, ReadOnlyCommitDoesNotTouchSequenceLock) {
  auto& seq = stm::defaultDomain().norecSeq();
  stm::TxField<std::int64_t> x(7);
  const auto before = seq.load();
  stm::atomically([&](stm::Tx& tx) { (void)x.read(tx); });
  EXPECT_EQ(seq.load(), before);
}

// Value-based validation tolerates ABA: a concurrent writer changes a read
// location and changes it back; the reader's revalidation compares values,
// so it commits without a retry. (The orec backend would abort here: the
// version moved.)
TEST_F(StmNorecTest, AbaIsToleratedByValueValidation) {
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(0);
  OneShot readDone;
  OneShot abaDone;
  std::atomic<int> attempts{0};

  std::thread reader([&] {
    const auto sum = stm::atomically([&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      const auto vx = x.read(tx);
      if (attempt == 1) {
        readDone.fire();
        abaDone.wait();
      }
      // This read triggers revalidation (the sequence number moved), which
      // re-reads x by value: still 1, so no abort.
      const auto vy = y.read(tx);
      return vx + vy;
    });
    EXPECT_EQ(sum, 1);
  });

  readDone.wait();
  stm::atomically([&](stm::Tx& tx) { x.write(tx, 2); });
  stm::atomically([&](stm::Tx& tx) { x.write(tx, 1); });  // back to original
  abaDone.fire();
  reader.join();
  EXPECT_EQ(attempts.load(), 1);  // no retry despite the intervening commits
}

// And the control: a *lasting* change to a read location must abort.
TEST_F(StmNorecTest, LastingChangeAborts) {
  stm::TxField<std::int64_t> x(1);
  stm::TxField<std::int64_t> y(0);
  OneShot readDone;
  OneShot changeDone;
  std::atomic<int> attempts{0};

  std::thread reader([&] {
    stm::atomically([&](stm::Tx& tx) {
      const int attempt = attempts.fetch_add(1) + 1;
      (void)x.read(tx);
      if (attempt == 1) {
        readDone.fire();
        changeDone.wait();
      }
      (void)y.read(tx);
    });
  });

  readDone.wait();
  stm::atomically([&](stm::Tx& tx) { x.write(tx, 2); });
  changeDone.fire();
  reader.join();
  EXPECT_GE(attempts.load(), 2);
}

TEST_F(StmNorecTest, WriterSerializationIsTotal) {
  stm::TxField<std::int64_t> x(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        stm::atomically([&](stm::Tx& tx) { x.write(tx, x.read(tx) + 1); });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(x.loadRelaxed(), kThreads * kPerThread);
}

TEST_F(StmNorecTest, UreadNeverSeesTornCommit) {
  stm::TxField<std::int64_t> a(0);
  stm::TxField<std::int64_t> b(0);
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::thread writer([&] {
    for (std::int64_t i = 1; i <= 15000; ++i) {
      stm::atomically([&](stm::Tx& tx) {
        a.write(tx, i);
        b.write(tx, i);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      // Transactional reads must give a consistent pair.
      const auto [va, vb] = stm::atomically([&](stm::Tx& tx) {
        return std::pair{a.read(tx), b.read(tx)};
      });
      if (va != vb) anomalies.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST_F(StmNorecTest, ElasticRequestsFallBackToNormal) {
  // NOrec has no per-location metadata for windows; elastic transactions
  // must still be correct (they run as normal transactions).
  stm::TxField<std::int64_t> x(3);
  const auto v = stm::atomically(stm::TxKind::Elastic,
                                 [&](stm::Tx& tx) { return x.read(tx); });
  EXPECT_EQ(v, 3);
  stm::atomically(stm::TxKind::Elastic,
                  [&](stm::Tx& tx) { x.write(tx, x.read(tx) + 1); });
  EXPECT_EQ(x.loadRelaxed(), 4);
}

TEST_F(StmNorecTest, CommitHooksAndAllocsWork) {
  stm::TxField<std::int64_t> x(0);
  int hookRuns = 0;
  int attempts = 0;
  stm::atomically([&](stm::Tx& tx) {
    ++attempts;
    x.write(tx, 1);
    tx.onCommit([&] { ++hookRuns; });
    if (attempts == 1) tx.restart();
  });
  EXPECT_EQ(hookRuns, 1);
}

// Batched RO validation (one sequence-lock check per K reads instead of
// per read) must not weaken snapshot consistency: a reader summing many
// fields that writers shuffle (preserving the total) must always commit
// the invariant total, for batch sizes both above and below the scan
// length.
TEST_F(StmNorecTest, BatchedReadOnlyValidationKeepsSnapshots) {
  constexpr int kSlots = 64;
  constexpr std::int64_t kTotal = 1'000;
  const auto originalCfg = stm::defaultDomain().config();
  for (const std::uint32_t batch : {4u, 256u}) {
    auto cfg = stm::defaultDomain().config();
    cfg.norecRoBatch = batch;
    stm::defaultDomain().setConfig(cfg);

    std::vector<stm::TxField<std::int64_t>> slots(kSlots);
    stm::atomically([&](stm::Tx& tx) { slots[0].write(tx, kTotal); });

    std::atomic<bool> stop{false};
    std::atomic<int> anomalies{0};
    std::thread writer([&] {
      std::uint64_t seed = 1234;
      while (!stop.load(std::memory_order_acquire)) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const int a = static_cast<int>((seed >> 33) % kSlots);
        const int b = static_cast<int>((seed >> 13) % kSlots);
        if (a == b) continue;
        stm::atomically([&](stm::Tx& tx) {
          // Move one unit from a to b: the total is invariant.
          const auto va = slots[a].read(tx);
          if (va == 0) return;
          slots[a].write(tx, va - 1);
          slots[b].write(tx, slots[b].read(tx) + 1);
        });
      }
    });
    for (int i = 0; i < 2'000; ++i) {
      const auto sum =
          stm::atomically(stm::TxKind::ReadOnly, [&](stm::Tx& tx) {
            std::int64_t s = 0;
            for (auto& slot : slots) s += slot.read(tx);
            return s;
          });
      if (sum != kTotal) anomalies.fetch_add(1);
    }
    stop.store(true, std::memory_order_release);
    writer.join();
    EXPECT_EQ(anomalies.load(), 0) << "batch=" << batch;
  }
  stm::defaultDomain().setConfig(originalCfg);
}

}  // namespace
