// Concurrent correctness of every tree: per-key linearizability (successful
// inserts/removes on one key must alternate), cross-thread visibility, and
// structural sanity after contended runs.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/rng.hpp"
#include "stm/stm.hpp"
#include "trees/map_interface.hpp"

namespace trees = sftree::trees;
namespace stm = sftree::stm;
using sftree::Key;
using sftree::bench::Rng;

namespace {

struct Scenario {
  trees::MapKind kind;
  stm::TxKind txKind;
  stm::LockMode lockMode;
  stm::TmBackend backend = stm::TmBackend::Orec;
};

std::string scenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  std::string name = trees::mapKindName(info.param.kind);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += info.param.txKind == stm::TxKind::Elastic ? "_elastic" : "_normal";
  if (info.param.backend == stm::TmBackend::NOrec) {
    name += "_norec";
  } else {
    name += info.param.lockMode == stm::LockMode::Eager ? "_etl" : "_ctl";
  }
  return name;
}

class TreeConcurrentTest : public ::testing::TestWithParam<Scenario> {
 protected:
  void SetUp() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = GetParam().lockMode;
    cfg.backend = GetParam().backend;
    stm::defaultDomain().setConfig(cfg);
  }
  void TearDown() override {
    auto cfg = stm::defaultDomain().config();
    cfg.lockMode = stm::LockMode::Lazy;
    cfg.backend = stm::TmBackend::Orec;
    stm::defaultDomain().setConfig(cfg);
  }

  std::unique_ptr<trees::ITransactionalMap> makeMap() {
    return trees::makeMap(GetParam().kind, GetParam().txKind);
  }
};

// Threads hammer a small key range; for every key the number of successful
// inserts minus successful removes must be 0 or 1 and must equal the final
// membership — only a linearizable set can satisfy this for all keys.
TEST_P(TreeConcurrentTest, PerKeyLinearizability) {
  auto map = makeMap();
  constexpr int kThreads = 4;
  constexpr Key kRange = 64;
  constexpr int kOpsPerThread = 8000;

  std::vector<std::atomic<std::int64_t>> inserted(kRange);
  std::vector<std::atomic<std::int64_t>> removed(kRange);
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(kRange));
        switch (rng.nextBounded(3)) {
          case 0:
            if (map->insert(k, k)) inserted[k].fetch_add(1);
            break;
          case 1:
            if (map->erase(k)) removed[k].fetch_add(1);
            break;
          default:
            map->contains(k);
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  map->quiesce();

  for (Key k = 0; k < kRange; ++k) {
    const auto delta = inserted[k].load() - removed[k].load();
    ASSERT_GE(delta, 0) << "key " << k;
    ASSERT_LE(delta, 1) << "key " << k;
    EXPECT_EQ(map->contains(k), delta == 1) << "key " << k;
  }
}

// Disjoint key ranges per thread: each thread's final state must match a
// sequential execution of its own operations exactly.
TEST_P(TreeConcurrentTest, DisjointRangesMatchSequentialReplay) {
  auto map = makeMap();
  constexpr int kThreads = 4;
  constexpr Key kPerThread = 256;
  std::vector<std::vector<Key>> expected(kThreads);
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const Key base = static_cast<Key>(t) * kPerThread;
      Rng rng(500 + t);
      std::vector<bool> present(kPerThread, false);
      sync.arrive_and_wait();
      for (int i = 0; i < 6000; ++i) {
        const Key off = static_cast<Key>(rng.nextBounded(kPerThread));
        const Key k = base + off;
        if (rng.nextBool()) {
          const bool ok = map->insert(k, k);
          ASSERT_EQ(ok, !present[off]) << "insert " << k;
          present[off] = true;
        } else {
          const bool ok = map->erase(k);
          ASSERT_EQ(ok, present[off]) << "erase " << k;
          present[off] = false;
        }
      }
      for (Key off = 0; off < kPerThread; ++off) {
        if (present[off]) expected[t].push_back(base + off);
      }
    });
  }
  for (auto& th : threads) th.join();
  map->quiesce();

  std::vector<Key> expectAll;
  for (auto& v : expected) {
    expectAll.insert(expectAll.end(), v.begin(), v.end());
  }
  std::sort(expectAll.begin(), expectAll.end());
  EXPECT_EQ(map->keysInOrder(), expectAll);
}

// Readers must never see a key flicker while only unrelated keys change.
TEST_P(TreeConcurrentTest, StableKeyNeverDisappears) {
  auto map = makeMap();
  constexpr Key kStable = 10'000;
  map->insert(kStable, 1);
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};

  std::thread churn([&] {
    Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      const Key k = static_cast<Key>(rng.nextBounded(512));
      if (rng.nextBool()) {
        map->insert(k, k);
      } else {
        map->erase(k);
      }
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 20000; ++i) {
      if (!map->contains(kStable)) misses.fetch_add(1);
    }
    stop.store(true, std::memory_order_release);
  });
  churn.join();
  reader.join();
  EXPECT_EQ(misses.load(), 0);
}

// Composed moves between two halves of the key space: the total number of
// keys must be conserved by every move.
TEST_P(TreeConcurrentTest, ConcurrentMovesConserveKeys) {
  auto map = makeMap();
  constexpr Key kRange = 128;
  std::int64_t initial = 0;
  for (Key k = 0; k < kRange; k += 2) {
    map->insert(k, k);
    ++initial;
  }
  std::atomic<std::int64_t> netInserts{0};
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2222 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 4000; ++i) {
        const Key a = static_cast<Key>(rng.nextBounded(kRange));
        const Key b = static_cast<Key>(rng.nextBounded(kRange));
        map->move(a, b);  // conserves cardinality whether it succeeds or not
      }
    });
  }
  for (auto& th : threads) th.join();
  map->quiesce();
  EXPECT_EQ(map->size(),
            static_cast<std::size_t>(initial + netInserts.load()));
}

// High-contention smoke: all threads target the same few keys, forcing
// constant conflicts; the run must terminate (no livelock) and stay sane.
TEST_P(TreeConcurrentTest, HotspotContention) {
  auto map = makeMap();
  constexpr int kThreads = 4;
  std::barrier sync(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(31 + t);
      sync.arrive_and_wait();
      for (int i = 0; i < 3000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(4));
        if (rng.nextBool()) {
          map->insert(k, t);
        } else {
          map->erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  map->quiesce();
  EXPECT_LE(map->size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, TreeConcurrentTest,
    ::testing::Values(
        // All five trees under the default TM (CTL / normal).
        Scenario{trees::MapKind::SFTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::OptSFTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::NRTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::RBTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::AVLTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy},
        // Portability (paper §5.3): eager acquirement (TinySTM-ETL).
        Scenario{trees::MapKind::OptSFTree, stm::TxKind::Normal,
                 stm::LockMode::Eager},
        Scenario{trees::MapKind::RBTree, stm::TxKind::Normal,
                 stm::LockMode::Eager},
        Scenario{trees::MapKind::SFTree, stm::TxKind::Normal,
                 stm::LockMode::Eager},
        // NOrec backend (portability: a TM with no per-location metadata).
        Scenario{trees::MapKind::OptSFTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy, stm::TmBackend::NOrec},
        Scenario{trees::MapKind::RBTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy, stm::TmBackend::NOrec},
        Scenario{trees::MapKind::SFTree, stm::TxKind::Normal,
                 stm::LockMode::Lazy, stm::TmBackend::NOrec},
        // Elastic transactions (E-STM).
        Scenario{trees::MapKind::SFTree, stm::TxKind::Elastic,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::OptSFTree, stm::TxKind::Elastic,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::RBTree, stm::TxKind::Elastic,
                 stm::LockMode::Lazy},
        Scenario{trees::MapKind::AVLTree, stm::TxKind::Elastic,
                 stm::LockMode::Lazy}),
    scenarioName);

}  // namespace
