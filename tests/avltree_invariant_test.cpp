// AVL tree invariants (BST order, exact stored heights, balance factors in
// {-1,0,+1}) under sequential and concurrent workloads.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "bench_core/rng.hpp"
#include "trees/avltree.hpp"
#include "trees/tree_checks.hpp"

namespace trees = sftree::trees;
using sftree::Key;
using sftree::bench::Rng;
using trees::AVLTree;

namespace {

void expectValid(AVLTree& tree) {
  const auto check = trees::checkAVLTree(tree);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(AVLTreeInvariantTest, EmptyTreeIsValid) {
  AVLTree tree;
  expectValid(tree);
}

TEST(AVLTreeInvariantTest, AscendingInsertionStaysBalanced) {
  AVLTree tree;
  constexpr Key kN = 2048;
  for (Key k = 0; k < kN; ++k) ASSERT_TRUE(tree.insert(k, k));
  expectValid(tree);
  // AVL height bound: 1.44*log2(n+2).
  EXPECT_LE(tree.height(), 17);
}

TEST(AVLTreeInvariantTest, RotationCases) {
  // Exercise all four rotation cases explicitly: LL, RR, LR, RL.
  {
    AVLTree t;  // LL
    t.insert(30, 0);
    t.insert(20, 0);
    t.insert(10, 0);
    expectValid(t);
    EXPECT_EQ(t.keysInOrder(), (std::vector<Key>{10, 20, 30}));
    EXPECT_EQ(t.height(), 2);
  }
  {
    AVLTree t;  // RR
    t.insert(10, 0);
    t.insert(20, 0);
    t.insert(30, 0);
    expectValid(t);
    EXPECT_EQ(t.height(), 2);
  }
  {
    AVLTree t;  // LR
    t.insert(30, 0);
    t.insert(10, 0);
    t.insert(20, 0);
    expectValid(t);
    EXPECT_EQ(t.height(), 2);
  }
  {
    AVLTree t;  // RL
    t.insert(10, 0);
    t.insert(30, 0);
    t.insert(20, 0);
    expectValid(t);
    EXPECT_EQ(t.height(), 2);
  }
}

TEST(AVLTreeInvariantTest, EraseLeafAndInteriorAndRoot) {
  AVLTree tree;
  for (Key k : {50, 25, 75, 12, 37, 62, 87}) tree.insert(k, k);
  ASSERT_TRUE(tree.erase(12));  // leaf
  expectValid(tree);
  ASSERT_TRUE(tree.erase(25));  // one child
  expectValid(tree);
  ASSERT_TRUE(tree.erase(50));  // root with two children
  expectValid(tree);
  EXPECT_EQ(tree.keysInOrder(), (std::vector<Key>{37, 62, 75, 87}));
}

TEST(AVLTreeInvariantTest, MixedFuzzKeepsInvariants) {
  AVLTree tree;
  std::set<Key> reference;
  Rng rng(4242);
  for (int i = 0; i < 8000; ++i) {
    const Key k = static_cast<Key>(rng.nextBounded(512));
    if (rng.nextBool()) {
      ASSERT_EQ(tree.insert(k, k), reference.insert(k).second);
    } else {
      ASSERT_EQ(tree.erase(k), reference.erase(k) > 0);
    }
    if (i % 500 == 0) expectValid(tree);
  }
  expectValid(tree);
  std::vector<Key> expect(reference.begin(), reference.end());
  EXPECT_EQ(tree.keysInOrder(), expect);
}

TEST(AVLTreeInvariantTest, ConcurrentChurnEndsValid) {
  AVLTree tree;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1300 + t);
      for (int i = 0; i < 5000; ++i) {
        const Key k = static_cast<Key>(rng.nextBounded(1024));
        if (rng.nextBool()) {
          tree.insert(k, k);
        } else {
          tree.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  expectValid(tree);
}

}  // namespace
