// Slab arena (src/mem/arena.hpp): block recycling, header-routed recycle
// from foreign threads, concurrent allocate/recycle stress, and the
// integration with the quiescence GC — recycled nodes must never be handed
// out while a pre-retirement reader could still dereference them (no ABA on
// recycled nodes; the ThreadSanitizer CI job runs this suite too).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "mem/arena.hpp"
#include "trees/sftree.hpp"

namespace mem = sftree::mem;
namespace trees = sftree::trees;

namespace {

struct TestNode {
  std::uint64_t a;
  std::uint64_t b;
  explicit TestNode(std::uint64_t v) : a(v), b(~v) {}
};

TEST(SlabArenaTest, AllocateRecycleReuse) {
  mem::SlabArena arena(sizeof(TestNode));
  EXPECT_GE(arena.strideBytes(), sizeof(TestNode));
  EXPECT_EQ(arena.strideBytes() % mem::SlabArena::kBlockAlign, 0u);

  void* p1 = arena.allocate();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) %
                mem::SlabArena::kBlockAlign,
            0u);
  mem::SlabArena::recycle(p1);
  // The freed block is on this thread's free-list shard: the next
  // allocation from the same thread reuses it.
  void* p2 = arena.allocate();
  EXPECT_EQ(p1, p2);
  mem::SlabArena::recycle(p2);
  EXPECT_EQ(arena.liveBlocks(), 0);
}

TEST(SlabArenaTest, BlocksAreDistinctAndAligned) {
  mem::SlabArena arena(24);
  std::set<void*> seen;
  std::vector<void*> blocks;
  for (int i = 0; i < 5000; ++i) {
    void* p = arena.allocate();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  mem::SlabArena::kBlockAlign,
              0u);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live block";
    blocks.push_back(p);
  }
  EXPECT_EQ(arena.liveBlocks(), 5000);
  for (void* p : blocks) mem::SlabArena::recycle(p);
  EXPECT_EQ(arena.liveBlocks(), 0);
  EXPECT_GT(arena.slabCount(), 1u);  // 5000 blocks do not fit one slab
}

TEST(SlabArenaTest, RecycleRoutesToOwningArenaFromForeignThread) {
  mem::SlabArena a1(sizeof(TestNode));
  mem::SlabArena a2(sizeof(TestNode));
  void* p1 = a1.allocate();
  void* p2 = a2.allocate();
  // Recycle on a different thread than the allocator: the slab header must
  // route each block back to its own arena.
  std::thread t([&] {
    mem::SlabArena::recycle(p1);
    mem::SlabArena::recycle(p2);
  });
  t.join();
  EXPECT_EQ(a1.liveBlocks(), 0);
  EXPECT_EQ(a2.liveBlocks(), 0);
  EXPECT_EQ(a1.allocated(), 1u);
  EXPECT_EQ(a2.allocated(), 1u);
}

TEST(SlabArenaTest, NodeArenaConstructsAndDestroys) {
  mem::NodeArena<TestNode> arena;
  TestNode* n = arena.create(std::uint64_t{42});
  EXPECT_EQ(n->a, 42u);
  EXPECT_EQ(n->b, ~std::uint64_t{42});
  // destroy() is a plain function pointer compatible with the limbo-list
  // deleter signature.
  void (*deleter)(void*) = &mem::NodeArena<TestNode>::destroy;
  deleter(n);
  EXPECT_EQ(arena.raw().liveBlocks(), 0);
}

TEST(SlabArenaTest, ConcurrentAllocateRecycleStress) {
  mem::SlabArena arena(sizeof(TestNode));
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&arena, t] {
      std::vector<void*> mine;
      std::uint64_t seed = 0x9E3779B97F4A7C15ULL * (t + 1);
      for (int i = 0; i < kIters; ++i) {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        if (mine.size() < 64 && (seed & 1) != 0) {
          auto* n = new (arena.allocate()) TestNode(seed);
          mine.push_back(n);
        } else if (!mine.empty()) {
          auto* n = static_cast<TestNode*>(mine.back());
          mine.pop_back();
          EXPECT_EQ(n->b, ~n->a);  // contents never trampled while live
          n->~TestNode();
          mem::SlabArena::recycle(n);
        }
      }
      for (void* p : mine) {
        static_cast<TestNode*>(p)->~TestNode();
        mem::SlabArena::recycle(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(arena.liveBlocks(), 0);
  EXPECT_EQ(arena.allocated(), arena.recycled());
}

// Recycle-under-GC stress: concurrent inserts/erases churn nodes through
// the limbo list (retire -> quiesce -> recycle) while readers traverse.
// A recycled node handed out too early would surface as a torn traversal,
// a wrong countRange snapshot, or a TSan race; the tree invariants and the
// arena counters must line up afterwards.
TEST(ArenaGcStressTest, RecycledNodesRespectQuiescence) {
  for (const auto variant :
       {trees::OpsVariant::Portable, trees::OpsVariant::Optimized}) {
    SCOPED_TRACE(variant == trees::OpsVariant::Portable ? "Portable"
                                                        : "Optimized");
    trees::SFTreeConfig cfg;
    cfg.ops = variant;
    trees::SFTree tree(cfg);  // dedicated maintenance thread running

    constexpr sftree::Key kRange = 2048;
    for (sftree::Key k = 0; k < kRange; k += 2) tree.insert(k, k);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> readerOps{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&tree, t] {
        std::uint64_t seed = 0xDEADBEEF + t;
        for (int i = 0; i < 30000; ++i) {
          seed ^= seed >> 12;
          seed ^= seed << 25;
          seed ^= seed >> 27;
          const sftree::Key k = static_cast<sftree::Key>(seed % kRange);
          if ((seed & 1) != 0) {
            tree.insert(k, k);
          } else {
            tree.erase(k);
          }
        }
      });
    }
    std::thread reader([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (sftree::Key k = 0; k < kRange; k += 97) {
          const auto v = tree.get(k);
          if (v) {
            // Values are always written equal to their key: a recycled
            // node observed mid-traversal would break this.
            ASSERT_EQ(*v, k);
          }
        }
        readerOps.fetch_add(1);
      }
    });
    for (auto& w : workers) w.join();
    stop.store(true);
    reader.join();
    EXPECT_GT(readerOps.load(), 0u);

    tree.stopMaintenance();
    tree.quiesceNow();
    // Every key still present maps to itself; tree is structurally sound.
    const auto keys = tree.keysInOrder();
    for (const auto k : keys) {
      EXPECT_EQ(tree.get(k), std::optional<sftree::Value>(k));
    }
  }
}

}  // namespace
